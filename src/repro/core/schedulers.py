"""Request schedulers for the software memory controller.

The software library of EasyAPI (Table 2) ships FCFS and FR-FCFS
scheduler implementations.  Schedulers select the next request from the
software request table given the current bank states; their *decision
cost* in controller cycles is charged by the cost model so slower
algorithms genuinely slow the controller down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState


@dataclass(slots=True, eq=False)
class TableEntry:
    """A request decoded and parked in the software request table.

    Identity semantics (``eq=False``): ``table.remove(entry)`` removes
    the selected object itself, so equality never needs field tuples.
    """

    request: MemoryRequest
    dram: DramAddress
    arrival_order: int

    @property
    def is_write(self) -> bool:
        return self.request.is_writeback


class Scheduler:
    """Interface: pick the next table entry to service."""

    name = "abstract"

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        raise NotImplementedError

    def decision_cost(self, table_len: int) -> int:
        """Controller cycles the decision takes (charged by the cost model)."""
        raise NotImplementedError


class FCFS(Scheduler):
    """First come, first serve: strictly oldest request first."""

    name = "fcfs"

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        return min(table, key=lambda e: e.arrival_order)

    def select_flat(self, table: list[tuple],
                    open_row: list[int]) -> tuple:
        """:meth:`select` on the fast path's flat request table.

        Fast-path table entries are ``(arrival_order, request, dram)``
        tuples, appended in arrival order; removals keep the list
        ordered, so the oldest entry is the first one.
        """
        return table[0]

    def decision_cost(self, table_len: int) -> int:
        return 3 + table_len


class FRFCFS(Scheduler):
    """First ready, first come, first serve (Rixner et al.).

    Row-buffer hits are prioritized over row misses; ties break by age.
    This maximizes row-buffer locality and is the paper's default.

    ``age_cap`` is the anti-starvation guard multi-core contention
    needs: plain FR-FCFS lets one core's row-hit stream bypass another
    core's row-miss request indefinitely.  With a cap, once the oldest
    table entry has watched ``age_cap`` newer requests arrive (its
    arrival-order distance to the newest entry reaches the cap), it is
    served next regardless of row-buffer state.  The default (``None``)
    disables the guard and reproduces the paper's single-core scheduler
    bit for bit.
    """

    name = "fr-fcfs"

    def __init__(self, age_cap: int | None = None) -> None:
        if age_cap is not None and age_cap < 1:
            raise ValueError("age_cap must be >= 1 (or None to disable)")
        self.age_cap = age_cap

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        cap = self.age_cap
        if cap is not None:
            oldest = min(table, key=lambda e: e.arrival_order)
            newest = max(table, key=lambda e: e.arrival_order)
            if newest.arrival_order - oldest.arrival_order >= cap:
                return oldest
        best: TableEntry | None = None
        best_key: tuple[int, int, int] | None = None
        for entry in table:
            bank = banks[entry.dram.bank]
            row_hit = bank.open_row == entry.dram.row
            # Reads (fills) are latency-critical; writebacks are posted,
            # so they drain behind reads (standard write deprioritization).
            key = (1 if entry.is_write else 0,
                   0 if row_hit else 1, entry.arrival_order)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def select_flat(self, table: list[tuple],
                    open_row: list[int]) -> tuple:
        """:meth:`select` on the fast path's flat request table.

        Entries are ``(arrival_order, request, dram)`` tuples.  The
        (write, row-miss, age) key is packed into one integer —
        ``arrival_order`` is far below 2**60, so the packed comparison
        is exactly the lexicographic tuple comparison.
        """
        cap = self.age_cap
        if cap is not None and table[-1][0] - table[0][0] >= cap:
            # Entries append in arrival order and removals keep the list
            # sorted, so first/last are the oldest/newest entries.
            return table[0]
        # The oldest entry has the smallest arrival order, so if it is a
        # read row-hit nothing can beat it — the common case on
        # streaming fills is O(1).
        order, request, dram = table[0]
        if not request.is_writeback and open_row[dram.bank] == dram.row:
            return table[0]
        best: tuple | None = None
        best_key = 1 << 63
        for entry in table:
            order, request, dram = entry
            key = order
            if request.is_writeback:
                key += 2 << 60
            if open_row[dram.bank] != dram.row:
                key += 1 << 60
            if key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def decision_cost(self, table_len: int) -> int:
        # Scanning the table for row hits costs a couple of cycles/entry.
        return 4 + 2 * table_len


def make_scheduler(name: str, age_cap: int | None = None) -> Scheduler:
    """Factory used by the controller config.

    ``age_cap`` only applies to FR-FCFS (FCFS is starvation-free by
    construction); passing it with ``"fcfs"`` is accepted and ignored so
    configs can sweep schedulers without special-casing.
    """
    if name == "fcfs":
        return FCFS()
    if name == "fr-fcfs":
        return FRFCFS(age_cap=age_cap)
    raise ValueError(f"unknown scheduler {name!r}")
