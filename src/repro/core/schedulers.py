"""Request schedulers for the software memory controller.

The software library of EasyAPI (Table 2) ships FCFS and FR-FCFS
scheduler implementations.  Schedulers select the next request from the
software request table given the current bank states; their *decision
cost* in controller cycles is charged by the cost model so slower
algorithms genuinely slow the controller down.

Beyond the paper's pair, the multi-core scenario engine adds three
fairness-aware policies from the memory-scheduling literature:

* ``atlas`` — ATLAS-style least-attained-service ranking (Kim et al.,
  HPCA 2010): cores that have received the least DRAM service rank
  first, with periodic decay so the ranking tracks *recent* service.
* ``bliss`` — BLISS-style blacklisting (Subramanian et al., ICCD 2014):
  a core served too many times in a row is blacklisted (deprioritized)
  until the periodic blacklist clear, which throttles interference-heavy
  streams without per-core rank state in the hot loop.
* ``batch`` — PAR-BS-style request batching (Mutlu & Moscibroda, ISCA
  2008, simplified): the controller marks a bounded batch of the oldest
  requests per core and serves marked requests before unmarked ones, so
  no core's requests can be bypassed for longer than one batch drain.

Stateful schedulers (``stateful = True``) update their ranking state
inside :meth:`select`/:meth:`select_flat`; the controller guarantees the
select method is called exactly once per serviced request on every serve
path (the singleton shortcuts that skip selection are disabled for
them), so object-path and fast-path runs stay bit-identical.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass

from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState


@dataclass(slots=True, eq=False)
class TableEntry:
    """A request decoded and parked in the software request table.

    Identity semantics (``eq=False``): ``table.remove(entry)`` removes
    the selected object itself, so equality never needs field tuples.
    """

    request: MemoryRequest
    dram: DramAddress
    arrival_order: int

    @property
    def is_write(self) -> bool:
        return self.request.is_writeback


class Scheduler:
    """Interface: pick the next table entry to service."""

    name = "abstract"

    #: Stateful schedulers mutate ranking state inside select; the SMC
    #: disables its singleton-table shortcuts for them so selection runs
    #: exactly once per serve on the object path and the fast path alike.
    stateful = False

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        raise NotImplementedError

    def decision_cost(self, table_len: int) -> int:
        """Controller cycles the decision takes (charged by the cost model)."""
        raise NotImplementedError


class FCFS(Scheduler):
    """First come, first serve: strictly oldest request first."""

    name = "fcfs"

    def __init__(self, age_cap: int | None = None) -> None:
        # FCFS is starvation-free by construction; the cap is accepted
        # and ignored so configs can sweep schedulers uniformly.
        self.age_cap = None

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        return min(table, key=lambda e: e.arrival_order)

    def select_flat(self, table: list[tuple],
                    open_row: list[int]) -> tuple:
        """:meth:`select` on the fast path's flat request table.

        Fast-path table entries are ``(arrival_order, request, dram)``
        tuples, appended in arrival order; removals keep the list
        ordered, so the oldest entry is the first one.
        """
        return table[0]

    def decision_cost(self, table_len: int) -> int:
        return 3 + table_len


class FRFCFS(Scheduler):
    """First ready, first come, first serve (Rixner et al.).

    Row-buffer hits are prioritized over row misses; ties break by age.
    This maximizes row-buffer locality and is the paper's default.

    ``age_cap`` is the anti-starvation guard multi-core contention
    needs: plain FR-FCFS lets one core's row-hit stream bypass another
    core's row-miss request indefinitely.  With a cap, once the oldest
    table entry has watched ``age_cap`` newer requests arrive (its
    arrival-order distance to the newest entry reaches the cap), it is
    served next regardless of row-buffer state.  The default (``None``)
    disables the guard and reproduces the paper's single-core scheduler
    bit for bit.
    """

    name = "fr-fcfs"

    def __init__(self, age_cap: int | None = None) -> None:
        if age_cap is not None and age_cap < 1:
            raise ValueError("age_cap must be >= 1 (or None to disable)")
        self.age_cap = age_cap

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        cap = self.age_cap
        if cap is not None:
            oldest = min(table, key=lambda e: e.arrival_order)
            newest = max(table, key=lambda e: e.arrival_order)
            if newest.arrival_order - oldest.arrival_order >= cap:
                return oldest
        best: TableEntry | None = None
        best_key: tuple[int, int, int] | None = None
        for entry in table:
            bank = banks[entry.dram.bank]
            row_hit = bank.open_row == entry.dram.row
            # Reads (fills) are latency-critical; writebacks are posted,
            # so they drain behind reads (standard write deprioritization).
            key = (1 if entry.is_write else 0,
                   0 if row_hit else 1, entry.arrival_order)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def select_flat(self, table: list[tuple],
                    open_row: list[int]) -> tuple:
        """:meth:`select` on the fast path's flat request table.

        Entries are ``(arrival_order, request, dram)`` tuples.  The
        (write, row-miss, age) key is packed into one integer —
        ``arrival_order`` is far below 2**60, so the packed comparison
        is exactly the lexicographic tuple comparison.
        """
        cap = self.age_cap
        if cap is not None and table[-1][0] - table[0][0] >= cap:
            # Entries append in arrival order and removals keep the list
            # sorted, so first/last are the oldest/newest entries.
            return table[0]
        # The oldest entry has the smallest arrival order, so if it is a
        # read row-hit nothing can beat it — the common case on
        # streaming fills is O(1).
        order, request, dram = table[0]
        if not request.is_writeback and open_row[dram.bank] == dram.row:
            return table[0]
        best: tuple | None = None
        best_key = 1 << 63
        for entry in table:
            order, request, dram = entry
            key = order
            if request.is_writeback:
                key += 2 << 60
            if open_row[dram.bank] != dram.row:
                key += 1 << 60
            if key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def decision_cost(self, table_len: int) -> int:
        # Scanning the table for row hits costs a couple of cycles/entry.
        return 4 + 2 * table_len


class _RankedScheduler(Scheduler):
    """Shared machinery for the fairness-aware policies.

    Subclasses rank table entries into priority *groups* (smaller group
    first) and FR-FCFS order — reads before writebacks, row hits before
    misses, then age — breaks ties within a group.  Ranking state is
    updated via :meth:`_note_serve` inside select, which the controller
    calls exactly once per serviced request on every path.
    """

    stateful = True

    def __init__(self, age_cap: int | None = None) -> None:
        if age_cap is not None and age_cap < 1:
            raise ValueError("age_cap must be >= 1 (or None to disable)")
        self.age_cap = age_cap

    # -- subclass hooks --------------------------------------------------
    def _before_select(self, entries: list[tuple[int, int]]) -> None:
        """Observe the live ``(arrival_order, core)`` table before ranking."""

    def _group(self, arrival_order: int, core: int) -> int:
        raise NotImplementedError

    def _note_serve(self, arrival_order: int, core: int,
                    row_hit: bool) -> None:
        """Account the serviced request (selection already made)."""

    # -- Scheduler interface ---------------------------------------------
    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        self._before_select(
            [(e.arrival_order, e.request.core) for e in table])
        chosen: TableEntry | None = None
        cap = self.age_cap
        if cap is not None:
            oldest = min(table, key=lambda e: e.arrival_order)
            newest = max(table, key=lambda e: e.arrival_order)
            if newest.arrival_order - oldest.arrival_order >= cap:
                chosen = oldest
        if chosen is None:
            best_key: tuple[int, int, int, int] | None = None
            for entry in table:
                row_hit = banks[entry.dram.bank].open_row == entry.dram.row
                key = (self._group(entry.arrival_order, entry.request.core),
                       1 if entry.is_write else 0,
                       0 if row_hit else 1, entry.arrival_order)
                if best_key is None or key < best_key:
                    chosen, best_key = entry, key
        assert chosen is not None
        hit = banks[chosen.dram.bank].open_row == chosen.dram.row
        self._note_serve(chosen.arrival_order, chosen.request.core, hit)
        return chosen

    def select_flat(self, table: list[tuple],
                    open_row: list[int]) -> tuple:
        """:meth:`select` on the fast path's flat request table."""
        self._before_select([(order, request.core)
                             for order, request, _ in table])
        chosen: tuple | None = None
        cap = self.age_cap
        if cap is not None and table[-1][0] - table[0][0] >= cap:
            chosen = table[0]
        if chosen is None:
            best_key: tuple[int, int, int, int] | None = None
            for entry in table:
                order, request, dram = entry
                key = (self._group(order, request.core),
                       1 if request.is_writeback else 0,
                       0 if open_row[dram.bank] == dram.row else 1, order)
                if best_key is None or key < best_key:
                    chosen, best_key = entry, key
        assert chosen is not None
        order, request, dram = chosen
        self._note_serve(order, request.core,
                         open_row[dram.bank] == dram.row)
        return chosen


class ATLAS(_RankedScheduler):
    """ATLAS-style least-attained-service ranking.

    Each core accumulates *attained service* as it is served (row hits
    charge 1, activations charge 2 — a row miss occupies the channel for
    longer); the core with the least attained service ranks first, so
    starved latency-critical cores overtake bandwidth hogs.  Every
    ``quantum`` serviced requests the counters halve, making the ranking
    a long-term but decaying history, per the original quantum design.
    """

    name = "atlas"

    def __init__(self, age_cap: int | None = None,
                 quantum: int = 2048) -> None:
        super().__init__(age_cap)
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self.attained: dict[int, int] = {}
        self._serves_in_quantum = 0

    def _group(self, arrival_order: int, core: int) -> int:
        return self.attained.get(core, 0)

    def _note_serve(self, arrival_order: int, core: int,
                    row_hit: bool) -> None:
        self.attained[core] = self.attained.get(core, 0) + (1 if row_hit
                                                            else 2)
        self._serves_in_quantum += 1
        if self._serves_in_quantum >= self.quantum:
            self._serves_in_quantum = 0
            self.attained = {c: v >> 1 for c, v in self.attained.items()}

    def decision_cost(self, table_len: int) -> int:
        # Rank lookup plus the row-hit scan per entry.
        return 6 + 3 * table_len


class BLISS(_RankedScheduler):
    """BLISS-style blacklisting scheduler.

    A core served ``threshold`` times in a row is *blacklisted*:
    its requests lose to every non-blacklisted request until the
    blacklist clears (every ``clear_interval`` serviced requests).
    Within each class the order is plain FR-FCFS, keeping the row-buffer
    locality of the paper's scheduler for well-behaved streams.
    """

    name = "bliss"

    def __init__(self, age_cap: int | None = None, threshold: int = 4,
                 clear_interval: int = 512) -> None:
        super().__init__(age_cap)
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if clear_interval < 1:
            raise ValueError("clear_interval must be >= 1")
        self.threshold = threshold
        self.clear_interval = clear_interval
        self.blacklisted: set[int] = set()
        self._last_core: int | None = None
        self._streak = 0
        self._serves = 0

    def _group(self, arrival_order: int, core: int) -> int:
        return 1 if core in self.blacklisted else 0

    def _note_serve(self, arrival_order: int, core: int,
                    row_hit: bool) -> None:
        if core == self._last_core:
            self._streak += 1
        else:
            self._last_core = core
            self._streak = 1
        if self._streak >= self.threshold:
            self.blacklisted.add(core)
        self._serves += 1
        if self._serves >= self.clear_interval:
            self._serves = 0
            self.blacklisted.clear()

    def decision_cost(self, table_len: int) -> int:
        return 5 + 2 * table_len


class BatchScheduler(_RankedScheduler):
    """PAR-BS-style request batching (simplified).

    When no live table entry is marked, the scheduler forms a new batch:
    the oldest ``batch_cap`` requests of every core are marked.  Marked
    requests are served before unmarked ones (FR-FCFS order within each
    class), so a request waits at most one full batch drain regardless
    of the row-hit streams around it — batching *is* the anti-starvation
    mechanism.
    """

    name = "batch"

    def __init__(self, age_cap: int | None = None,
                 batch_cap: int = 4) -> None:
        super().__init__(age_cap)
        if batch_cap < 1:
            raise ValueError("batch_cap must be >= 1")
        self.batch_cap = batch_cap
        #: Arrival orders of the current batch's marked requests.
        self.marked: set[int] = set()

    def _before_select(self, entries: list[tuple[int, int]]) -> None:
        marked = self.marked
        if any(order in marked for order, _ in entries):
            return
        marked.clear()
        per_core: dict[int, int] = {}
        for order, core in sorted(entries):
            if per_core.get(core, 0) < self.batch_cap:
                per_core[core] = per_core.get(core, 0) + 1
                marked.add(order)

    def _group(self, arrival_order: int, core: int) -> int:
        return 0 if arrival_order in self.marked else 1

    def _note_serve(self, arrival_order: int, core: int,
                    row_hit: bool) -> None:
        self.marked.discard(arrival_order)

    def decision_cost(self, table_len: int) -> int:
        return 6 + 2 * table_len


#: Every scheduler the factory can build, keyed by config/CLI name.
SCHEDULERS: dict[str, type[Scheduler]] = {
    FCFS.name: FCFS,
    FRFCFS.name: FRFCFS,
    ATLAS.name: ATLAS,
    BLISS.name: BLISS,
    BatchScheduler.name: BatchScheduler,
}


def scheduler_names() -> tuple[str, ...]:
    """The registered scheduler names, sorted for stable messages."""
    return tuple(sorted(SCHEDULERS))


def scheduler_override() -> str | None:
    """The ``REPRO_SCHEDULER`` environment override, if set.

    Read at controller construction time (like every ``REPRO_*`` knob)
    so tests can monkeypatch it per system.
    """
    value = os.environ.get("REPRO_SCHEDULER", "").strip()
    return value or None


def make_scheduler(name: str, age_cap: int | None = None) -> Scheduler:
    """Factory used by the controller config.

    ``age_cap`` threads to every policy's anti-starvation guard (FCFS is
    starvation-free by construction and ignores it, so configs can sweep
    schedulers without special-casing).  Unknown names raise a
    ``ValueError`` listing the registry, with a did-you-mean suggestion
    when a close match exists.
    """
    cls = SCHEDULERS.get(name)
    if cls is None:
        known = scheduler_names()
        matches = difflib.get_close_matches(name, known, n=1, cutoff=0.5)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        raise ValueError(f"unknown scheduler {name!r}{hint}"
                         f" (known: {', '.join(known)})")
    return cls(age_cap=age_cap)
