"""RowClone: in-DRAM bulk data copy and initialization (Section 7).

Fast Parallel Mode (FPM) RowClone copies one DRAM row onto another by
issuing ACT -> premature PRE -> ACT; the operands must share a subarray
and the pair must be *clonable* (verified by repeated test copies, as
PiDRAM does).  This module implements the full end-to-end flow:

* an allocator that solves the four constraints of Section 7.1
  (alignment, granularity, mapping, coherence);
* clonability testing through the real command path (plus a fast oracle
  equivalent for large allocations);
* ``execute_copy`` / ``execute_init`` drivers used by the Figure 10/11
  experiments, with CPU fallback for unclonable pairs and optional
  CLFLUSH-based coherence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import Session
from repro.workloads.microbench import cpu_copy_blocks, cpu_init_blocks

_TEST_PATTERN_SALT = 0x5EED


@dataclass(frozen=True)
class RowPair:
    """One RowClone operand pair within a bank (of one channel)."""

    bank: int
    src_row: int
    dst_row: int
    reliable: bool
    channel: int = 0


@dataclass
class CopyPlan:
    """A bulk copy decomposed into row-granular RowClone operations."""

    pairs: list[RowPair]
    src_addr: int
    dst_addr: int
    size_bytes: int


@dataclass
class InitPlan:
    """A bulk initialization: one source row per touched subarray."""

    #: (channel, bank, subarray) -> source row carrying the fill pattern.
    source_rows: dict[tuple[int, int, int], int]
    #: Per target row: (bank, src_row, target_row, reliable).
    targets: list[RowPair]
    dst_addr: int
    size_bytes: int


@dataclass
class RowCloneStats:
    """Operation counters for one technique instance."""

    rowclone_ops: int = 0
    fallback_rows: int = 0
    flushed_lines: int = 0
    pairs_tested: int = 0


class RowCloneTechnique:
    """End-to-end RowClone on a running :class:`Session`."""

    def __init__(self, session: Session, use_oracle_testing: bool = True,
                 test_attempts: int = 1000) -> None:
        self.session = session
        self.system = session.system
        self.geometry = self.system.config.geometry
        self.mapper = self.system.mapper
        if not self.mapper.row_is_contiguous():
            raise ValueError(
                "RowClone allocation requires a row-contiguous mapping"
                " scheme (alignment problem, Section 7.1)")
        self.use_oracle_testing = use_oracle_testing
        self.test_attempts = test_attempts
        self.stats = RowCloneStats()
        self._reserved: set[tuple[int, int, int]] = set()

    # -- clonability testing (mapping problem) -------------------------------------

    def pair_is_clonable(self, bank: int, src_row: int, dst_row: int,
                         channel: int = 0) -> bool:
        """Is (src, dst) clonable?  1000-copy test, per PiDRAM.

        The oracle path consults the cell model directly — it returns
        exactly what the exhaustive test would (tests assert this); the
        emulated path actually performs test copies through Bender.
        """
        self.stats.pairs_tested += 1
        if self.geometry.subarray_of(src_row) != self.geometry.subarray_of(dst_row):
            return False
        cells = self.system.channels[channel].tile.cells
        if self.use_oracle_testing:
            return cells.rowclone_pair_reliable(bank, src_row, dst_row)
        return self.test_pair_emulated(bank, src_row, dst_row, channel=channel)

    def test_pair_emulated(self, bank: int, src_row: int, dst_row: int,
                           attempts: int | None = None,
                           channel: int = 0) -> bool:
        """Run real test copies; a single corrupted copy disqualifies."""
        device = self.system.device_for(channel)
        attempts = attempts if attempts is not None else self.test_attempts
        pattern = self._row_pattern(bank, src_row)
        device.preload_row(bank, src_row, pattern)
        for _ in range(attempts):
            self._rowclone_op(bank, src_row, dst_row, channel=channel)
            if device.row_data(bank, dst_row) != pattern:
                return False
        return True

    def _row_pattern(self, bank: int, row: int) -> bytes:
        unit = ((bank * 0x9E37 + row * 0x85EB + _TEST_PATTERN_SALT)
                & 0xFFFFFFFF).to_bytes(4, "little")
        return unit * (self.geometry.row_bytes // 4)

    # -- allocation (alignment + granularity + mapping problems) ---------------------

    def rows_for(self, size_bytes: int) -> int:
        """Whole DRAM rows covering ``size_bytes`` (granularity problem)."""
        return -(-size_bytes // self.geometry.row_bytes)

    def _phys_row(self, phys_addr: int) -> tuple[int, int, int]:
        dram = self.mapper.to_dram(phys_addr)
        return dram.channel, dram.bank, dram.row

    def _reserve(self, channel: int, bank: int, row: int) -> None:
        self._reserved.add((channel, bank, row))

    def plan_copy(self, size_bytes: int, base_addr: int = 0) -> CopyPlan:
        """Allocate clonable src/dst row pairs for an N-byte copy.

        The allocator walks rows from ``base_addr``, and for each source
        row searches its subarray for a destination row that passes the
        clonability test — this is how real allocations dodge unreliable
        pairs, so copies rarely fall back to the CPU.
        """
        g = self.geometry
        n_rows = self.rows_for(size_bytes)
        pairs: list[RowPair] = []
        src_phys = base_addr - (base_addr % g.row_bytes)
        for i in range(n_rows):
            channel, bank, src_row = self._phys_row(src_phys + i * g.row_bytes)
            self._reserve(channel, bank, src_row)
            dst_row = self._find_clonable_dst(bank, src_row, channel)
            if dst_row is None:
                # No clonable partner in the subarray: CPU fallback row.
                sub = g.subarray_of(src_row)
                dst_row = self._first_free_row(bank, sub, avoid=src_row,
                                               channel=channel)
                pairs.append(RowPair(bank, src_row, dst_row, reliable=False,
                                     channel=channel))
            else:
                pairs.append(RowPair(bank, src_row, dst_row, reliable=True,
                                     channel=channel))
            self._reserve(channel, bank, dst_row)
        dst_addr = self.mapper.row_base_physical(
            pairs[0].bank, pairs[0].dst_row, channel=pairs[0].channel)
        return CopyPlan(pairs=pairs, src_addr=src_phys,
                        dst_addr=dst_addr, size_bytes=size_bytes)

    def _find_clonable_dst(self, bank: int, src_row: int,
                           channel: int = 0) -> int | None:
        g = self.geometry
        sub = g.subarray_of(src_row)
        first = sub * g.subarray_rows
        last = min(first + g.subarray_rows, g.rows_per_bank)
        for dst_row in range(first, last):
            if dst_row == src_row or (channel, bank, dst_row) in self._reserved:
                continue
            if self.pair_is_clonable(bank, src_row, dst_row, channel=channel):
                return dst_row
        return None

    def _first_free_row(self, bank: int, subarray: int, avoid: int,
                        channel: int = 0) -> int:
        g = self.geometry
        first = subarray * g.subarray_rows
        last = min(first + g.subarray_rows, g.rows_per_bank)
        for row in range(first, last):
            if row != avoid and (channel, bank, row) not in self._reserved:
                return row
        raise RuntimeError(f"subarray {subarray} of bank {bank} is full")

    def plan_init(self, size_bytes: int, base_addr: int = 0) -> InitPlan:
        """Plan a bulk init: targets are *prescribed* by the array layout.

        Unlike copies, initialization must hit the array's own rows, so
        the allocator cannot route around unreliable pairs — it can only
        pick one source row per subarray and fall back to CPU stores for
        targets that fail the clonability test (footnote 6's overhead).
        """
        g = self.geometry
        n_rows = self.rows_for(size_bytes)
        dst_phys = base_addr - (base_addr % g.row_bytes)
        source_rows: dict[tuple[int, int, int], int] = {}
        targets: list[RowPair] = []
        for i in range(n_rows):
            channel, bank, target_row = self._phys_row(dst_phys + i * g.row_bytes)
            self._reserve(channel, bank, target_row)
            sub = g.subarray_of(target_row)
            key = (channel, bank, sub)
            if key not in source_rows:
                source_rows[key] = self._first_free_row(
                    bank, sub, avoid=target_row, channel=channel)
                self._reserve(channel, bank, source_rows[key])
            src_row = source_rows[key]
            reliable = self.pair_is_clonable(bank, src_row, target_row,
                                             channel=channel)
            targets.append(RowPair(bank, src_row, target_row, reliable,
                                   channel=channel))
        return InitPlan(source_rows=source_rows, targets=targets,
                        dst_addr=dst_phys, size_bytes=size_bytes)

    # -- execution -----------------------------------------------------------------

    def _rowclone_op(self, bank: int, src_row: int, dst_row: int,
                     channel: int = 0) -> None:
        """One in-DRAM copy through that channel's memory controller."""
        self.session.technique_op(
            lambda api: api.rowclone(bank, src_row, dst_row),
            respect_timing=False, channel=channel)
        self.stats.rowclone_ops += 1

    def execute_copy(self, plan: CopyPlan, clflush: bool = False) -> None:
        """Perform the planned bulk copy (Figure 10/11's RowClone variant)."""
        g = self.geometry
        for i, pair in enumerate(plan.pairs):
            src_phys = plan.src_addr + i * g.row_bytes
            dst_phys = self.mapper.row_base_physical(
                pair.bank, pair.dst_row, channel=pair.channel)
            if clflush:
                # Coherence problem: write back dirty source lines and
                # invalidate stale destination lines before the in-DRAM op.
                self.stats.flushed_lines += self.session.clflush_range(
                    src_phys, g.row_bytes)
                self.session.clflush_range(dst_phys, g.row_bytes)
            if pair.reliable:
                self._rowclone_op(pair.bank, pair.src_row, pair.dst_row,
                                  channel=pair.channel)
            else:
                self.stats.fallback_rows += 1
                self.session.run_trace(
                    cpu_copy_blocks(src_phys, dst_phys, g.row_bytes))

    def execute_init(self, plan: InitPlan, clflush: bool = False,
                     include_source_setup: bool = True) -> None:
        """Perform the planned bulk init (Figure 10/11's RowClone variant)."""
        g = self.geometry
        if include_source_setup:
            # CPU-initialize one source row per subarray with the fill
            # pattern and push it to DRAM — RowClone copies DRAM contents.
            for (channel, bank, _sub), src_row in plan.source_rows.items():
                src_phys = self.mapper.row_base_physical(
                    bank, src_row, channel=channel)
                self.session.run_trace(cpu_init_blocks(src_phys, g.row_bytes))
                self.stats.flushed_lines += self.session.clflush_range(
                    src_phys, g.row_bytes)
        for pair in plan.targets:
            dst_phys = self.mapper.row_base_physical(
                pair.bank, pair.dst_row, channel=pair.channel)
            if clflush:
                self.session.clflush_range(dst_phys, g.row_bytes)
            if pair.reliable:
                self._rowclone_op(pair.bank, pair.src_row, pair.dst_row,
                                  channel=pair.channel)
            else:
                self.stats.fallback_rows += 1
                self.session.run_trace(cpu_init_blocks(dst_phys, g.row_bytes))

    # -- verification (tests use this) ------------------------------------------------

    def copy_is_correct(self, plan: CopyPlan) -> bool:
        """Do all destination rows equal their source rows in DRAM?"""
        g = self.geometry
        for i, pair in enumerate(plan.pairs):
            device = self.system.device_for(pair.channel)
            src = device.row_data(pair.bank,
                                  self._phys_row(plan.src_addr + i * g.row_bytes)[2])
            dst = device.row_data(pair.bank, pair.dst_row)
            if src != dst:
                return False
        return True
