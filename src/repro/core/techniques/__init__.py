"""DRAM techniques implemented over EasyAPI (the paper's case studies)."""

from repro.core.techniques.rowclone import (
    CopyPlan,
    InitPlan,
    RowCloneStats,
    RowCloneTechnique,
    RowPair,
)
from repro.core.techniques.trcd import TrcdReductionTechnique, TrcdStats

__all__ = [
    "CopyPlan",
    "InitPlan",
    "RowCloneStats",
    "RowCloneTechnique",
    "RowPair",
    "TrcdReductionTechnique",
    "TrcdStats",
]
