"""tRCD reduction: reduced-latency DRAM access (Section 8, after Solar-DRAM).

Two stages, exactly as the paper implements them:

1. **Characterization** (:mod:`repro.profiling.characterize`) finds each
   row's minimum reliable tRCD; rows reliable at <= 9.0 ns are *strong*.
2. **Scheduling**: weak rows are loaded into a Bloom filter
   (RAIDR-style; weak rows are the keys so false positives only cost
   performance, never correctness).  On every row activation the
   software memory controller checks the filter and uses the reduced
   tRCD for strong rows and the nominal tRCD otherwise.

The technique installs itself as the controller's serve hook, replacing
the stock read/write sequences with tRCD-aware ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.easyapi import EasyAPI
from repro.core.schedulers import TableEntry
from repro.core.system import EasyDRAMSystem
from repro.profiling.bloom import BloomFilter
from repro.profiling.characterize import CharacterizationResult
from repro.dram.timing import ns


@dataclass
class TrcdStats:
    """Activation outcomes under the technique."""

    reduced_acts: int = 0
    nominal_acts: int = 0
    row_hits: int = 0

    @property
    def reduced_fraction(self) -> float:
        total = self.reduced_acts + self.nominal_acts
        return self.reduced_acts / total if total else 0.0


class TrcdReductionTechnique:
    """Reduced-tRCD request servicing on an :class:`EasyDRAMSystem`."""

    def __init__(self, system: EasyDRAMSystem,
                 characterization: CharacterizationResult,
                 reduced_trcd_ps: int = ns(9.0),
                 bloom_fp_rate: float = 0.01,
                 bloom_seed: int = 0xB100F) -> None:
        self.system = system
        self.reduced_trcd_ps = reduced_trcd_ps
        self.nominal_trcd_ps = system.config.timing.tRCD
        if reduced_trcd_ps >= self.nominal_trcd_ps:
            raise ValueError(
                "reduced tRCD must be below nominal"
                f" ({reduced_trcd_ps} >= {self.nominal_trcd_ps})")
        self.stats = TrcdStats()
        weak = characterization.weak_rows(threshold_ps=reduced_trcd_ps)
        # The filter is sized on the host and loaded into the controller
        # before emulation begins (Section 8.2).  Every channel's cell
        # model is built from the same configuration (and therefore the
        # same per-row draws), so one characterization covers them all —
        # keys carry the channel so distinct channels stay distinct in
        # the filter regardless.
        channels = system.config.geometry.channels
        self.bloom = BloomFilter.sized_for(
            max(1, len(weak) * channels), fp_rate=bloom_fp_rate,
            seed=bloom_seed)
        for channel in range(channels):
            for bank, row in weak:
                self.bloom.add(self._key(bank, row, channel))
        self._installed = False

    @staticmethod
    def _key(bank: int, row: int, channel: int = 0) -> int:
        return (channel << 48) | (bank << 32) | row

    # -- controller integration ---------------------------------------------------

    def install(self) -> None:
        """Hook the system's software memory controller."""
        self.system.smc.serve_hook = self._serve
        self._installed = True

    def uninstall(self) -> None:
        self.system.smc.serve_hook = None
        self._installed = False

    def trcd_for(self, bank: int, row: int, channel: int = 0) -> int:
        """tRCD the controller will use when activating (bank, row)."""
        if self._key(bank, row, channel) in self.bloom:
            return self.nominal_trcd_ps
        return self.reduced_trcd_ps

    def _serve(self, api: EasyAPI, entry: TableEntry) -> None:
        """tRCD-aware replacement for the stock request sequences."""
        t = self.system.config.timing
        dram = entry.dram
        state = api.tile.device.banks[dram.bank]
        if state.open_row != dram.row:
            api.charge(api.costs.bloom_check)
            trcd = self.trcd_for(dram.bank, dram.row, dram.channel)
            if trcd < self.nominal_trcd_ps:
                self.stats.reduced_acts += 1
            else:
                self.stats.nominal_acts += 1
            if state.open_row is not None:
                api.ddr_precharge(dram.bank)
                api.wait_after_command_ps(t.tRP)
            api.ddr_activate(dram.bank, dram.row)
            api.wait_after_command_ps(trcd)
        else:
            self.stats.row_hits += 1
        if entry.is_write:
            api.ddr_write(dram.bank, dram.col)
        else:
            api.ddr_read(dram.bank, dram.col)
