"""Emulation engines: the cycle-stepped reference and the event-driven core.

Both engines drive the same execution flow of Figures 5 and 6 — run the
processor until it clock-gates on an unserviced last-level-cache miss,
service every pending request in critical mode, resume at the release
cycles — and both produce *bit-identical* run results: the emulated
timeline is fully determined by the trace and the configuration, so an
engine may only choose how the **host** spends its time, never when the
emulated system does.

:class:`CycleEngine`
    The reference implementation.  Every request is staged through
    :class:`~repro.core.easyapi.EasyAPI` into a
    :class:`~repro.bender.program.BenderProgram`, walked instruction by
    instruction by the Bender engine, and validated by the full
    candidate-enumerating timing checker.  Simple, observable, and the
    baseline the equivalence tests pin the event engine against.

:class:`EventEngine`
    The skip-ahead core.  The processor advances directly to its next
    scheduled event (the gate), the software memory controller services
    the batch bank-parallel — planned command offsets plus the timing
    checker's fused per-bank queries instead of staged programs — and
    every response release and tREFI deadline crossed along the way is
    tracked on an explicit :class:`~repro.core.events.EventQueue`.
    Technique episodes (RowClone, profiling, tRCD hooks) automatically
    fall back to the reference path, so DRAM techniques observe the
    exact machinery they manipulate.

Engines are selected per system via ``EasyDRAMSystem(config,
engine=...)`` or the ``REPRO_ENGINE`` environment variable (default:
``event``).

On multi-channel topologies both engines drive the same controller
surface through the :class:`~repro.core.channels.ChannelSet` façade
(``session.system.smc``): every gate's pending batch is routed by each
request's decoded channel to that channel's software memory controller,
which services its slice on the channel's own emulated timeline.  The
event queue stays shared — releases from every channel merge into one
skip-ahead schedule — so the engines themselves are topology-agnostic.
"""

from __future__ import annotations

import os
from heapq import heappop as _heappop
from heapq import heappush as _heappush
from typing import TYPE_CHECKING

from repro.core.events import EngineStats, EventKind, EventQueue
from repro.cpu.memtrace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle at runtime
    from repro.core.system import Session


class EmulationDeadlock(Exception):
    """The processor is blocked but no requests are pending."""


#: Engine names accepted by :func:`make_engine` and ``REPRO_ENGINE``.
ENGINE_NAMES = ("event", "cycle")

DEFAULT_ENGINE = "event"


def resolve_engine_name(name: str | None) -> str:
    """Pick the engine: explicit argument, then ``REPRO_ENGINE``, then default."""
    if name is None:
        name = os.environ.get("REPRO_ENGINE", "") or DEFAULT_ENGINE
    if name not in ENGINE_NAMES:
        known = ", ".join(ENGINE_NAMES)
        raise ValueError(f"unknown emulation engine {name!r}; known: {known}")
    return name


def make_engine(name: str | None = None):
    """Instantiate the engine selected by ``name`` (see :func:`resolve_engine_name`)."""
    resolved = resolve_engine_name(name)
    if resolved == "cycle":
        return CycleEngine()
    return EventEngine()


def _sweep_cores(active: list, counters, pending: list,
                 rotation: int) -> tuple[bool, bool]:
    """One round-robin arbitration sweep over every runnable core.

    Starting from ``rotation`` (so no core is permanently first at the
    SMC boundary), each core bursts to its next clock gate; its new
    requests join ``pending`` in sweep order — Python's stable sort in
    the controller then breaks equal-tag ties by this round-robin order.
    Returns ``(produced_requests, any_core_finished)``; finished cores
    are removed from ``active`` in place.
    """
    produced = False
    finished = False
    n = len(active)
    start = rotation % n
    for proc in active[start:] + active[:start]:
        burst = proc.execute_burst()
        counters.advance_processor(proc.cycles)
        if burst.new_requests:
            pending.extend(burst.new_requests)
            produced = True
        if burst.done:
            active.remove(proc)
            finished = True
    return produced, finished


class CycleEngine:
    """Reference engine: staged programs, instruction-walked execution."""

    name = "cycle"

    def __init__(self) -> None:
        self.stats = EngineStats()

    def run_trace(self, session: "Session", trace: Trace) -> None:
        """Execute one trace segment to completion (Fig 5/6 flow)."""
        proc = session.processor
        counters = session.system.counters
        smc = session.system.smc
        pending = session._pending
        proc.feed(trace)
        while True:
            burst = proc.execute_burst()
            counters.advance_processor(proc.cycles)
            pending.extend(burst.new_requests)
            if burst.done:
                if pending:
                    smc.service_pending(pending)
                    self.stats.releases += len(pending)
                    pending.clear()
                break
            if not pending:
                raise EmulationDeadlock(
                    "processor blocked with no pending memory requests")
            self.stats.gates += 1
            smc.service_pending(pending)
            self.stats.releases += len(pending)
            pending.clear()

    def run_cores(self, session: "Session", procs: list) -> None:
        """Drive N already-fed cores to completion (multi-core contention).

        The single-core flow generalized: every runnable core bursts to
        its gate (round-robin, rotating the start core each sweep), the
        merged pending batch is serviced in one critical-mode episode,
        and the sweep repeats until every core's trace drains.  With one
        core this loop is exactly :meth:`run_trace` minus the feed.
        """
        counters = session.system.counters
        smc = session.system.smc
        pending = session._pending
        active = [proc for proc in procs if not proc.done]
        sweep = 0
        while active:
            produced, finished = _sweep_cores(active, counters, pending, sweep)
            sweep += 1
            if pending:
                if active:
                    self.stats.gates += 1
                smc.service_pending(pending)
                self.stats.releases += len(pending)
                pending.clear()
            elif active and not (produced or finished):
                raise EmulationDeadlock(
                    "all cores blocked with no pending memory requests")


class EventEngine:
    """Skip-ahead engine: jump between events, service bank-parallel."""

    name = "event"

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.stats = EngineStats()
        self._proc_period = 0  # set on first run_trace

    def run_trace(self, session: "Session", trace: Trace) -> None:
        """Execute one trace segment, hopping event to event.

        The loop below *is* the skip-ahead schedule: ``execute_burst``
        advances the processor straight to the next gate (consuming any
        release events the jump reaches), the batched service episode
        moves the controller cursors request to request, and
        :meth:`EventQueue.drain_until` accounts for everything the jump
        passed over — including refresh deadlines that landed inside the
        skipped interval and were issued, at their exact emulated times,
        during the episode.
        """
        proc = session.processor
        counters = session.system.counters
        smc = session.system.smc
        pending = session._pending
        queue = self.queue
        stats = self.stats
        self._proc_period = session._proc_period
        proc.feed(trace)
        if proc.in_block_mode:
            # Whole-trace kernel replay (REPRO_KERNEL): the gated loop
            # below, run resident in C with one load/store per trace.
            from repro.dram.kernel import blockrun
            if blockrun.run_gated_kernel(self, session, proc, smc):
                return
            # Inverted control: the block replay loop services gates in
            # place (no per-gate burst return/re-entry).  The callback
            # body is exactly one iteration of the loop below, with the
            # event-queue push/drain inlined (entries and sequence
            # numbers identical to EventQueue.push/drain_until).
            advance = counters.advance_processor
            service_batched = smc.service_pending_batched
            note_refresh = self._note_refresh
            heap = queue._heap
            heappush = _heappush
            heappop = _heappop
            release_kind = EventKind.RELEASE

            def gate(new_requests: list, done: bool) -> None:
                cycles = proc.cycles
                advance(cycles)
                if not new_requests:
                    if done:
                        return
                    raise EmulationDeadlock(
                        "processor blocked with no pending memory requests")
                if not done:
                    stats.gates += 1
                if service_batched(new_requests, refresh_sink=note_refresh):
                    stats.batched_episodes += 1
                else:
                    stats.fallback_episodes += 1
                stats.releases += len(new_requests)
                seq = queue._seq
                for request in new_requests:
                    release = request.release
                    if release is not None:
                        heappush(heap, (release, seq, release_kind,
                                        request.rid))
                        seq += 1
                queue._seq = seq
                if done:
                    return
                skipped = 0
                while heap and heap[0][0] <= cycles:
                    heappop(heap)
                    skipped += 1
                stats.events_skipped += skipped

            proc.execute_gated(gate)
            return
        while True:
            burst = proc.execute_burst()
            counters.advance_processor(proc.cycles)
            pending.extend(burst.new_requests)
            if burst.done:
                if pending:
                    self._service(smc, pending)
                    pending.clear()
                break
            if not pending:
                raise EmulationDeadlock(
                    "processor blocked with no pending memory requests")
            stats.gates += 1
            self._service(smc, pending)
            pending.clear()
            # Events scheduled at or before the gate — releases the
            # processor's jump already passed, refresh deadlines that
            # landed inside the skipped interval — were absorbed without
            # dedicated host work; drain them so the queue stays small.
            stats.events_skipped += queue.drain_until(proc.cycles)

    def run_cores(self, session: "Session", procs: list) -> None:
        """Drive N already-fed cores to completion (multi-core contention).

        The skip-ahead loop generalized to N request streams: cores
        burst to their gates round-robin (block traces replay on the
        array-native block path inside ``execute_burst``; the
        per-core inverted ``execute_gated`` control flow cannot
        interleave cores, so mixes use the burst protocol), the merged
        batch is serviced bank-parallel, and the event queue drains to
        the slowest core's cycle — an event is only "passed" once every
        core's jump is beyond it.
        """
        counters = session.system.counters
        smc = session.system.smc
        pending = session._pending
        queue = self.queue
        stats = self.stats
        self._proc_period = session._proc_period
        active = [proc for proc in procs if not proc.done]
        sweep = 0
        while active:
            produced, finished = _sweep_cores(active, counters, pending, sweep)
            sweep += 1
            if pending:
                if active:
                    stats.gates += 1
                self._service(smc, pending)
                pending.clear()
                if active:
                    low = min(proc.cycles for proc in active)
                    stats.events_skipped += queue.drain_until(low)
            elif active and not (produced or finished):
                raise EmulationDeadlock(
                    "all cores blocked with no pending memory requests")

    # -- internals ------------------------------------------------------------

    def _service(self, smc, pending: list) -> None:
        """One critical-mode episode plus its event bookkeeping."""
        batched = smc.service_pending_batched(
            pending, refresh_sink=self._note_refresh)
        if batched:
            self.stats.batched_episodes += 1
        else:
            self.stats.fallback_episodes += 1
        queue = self.queue
        for request in pending:
            self.stats.releases += 1
            if request.release is not None:
                queue.push(request.release, EventKind.RELEASE,
                           payload=request.rid)

    def _note_refresh(self, deadline_ps: int) -> None:
        """Record a serviced tREFI deadline on the event queue."""
        self.stats.refreshes += 1
        if self._proc_period:
            self.queue.push(deadline_ps // self._proc_period,
                            EventKind.REFRESH)
