"""The software memory controller (SMC) framework.

:class:`SoftwareMemoryController` implements the service loop of
Figure 6: check for new requests, enter critical mode, transfer requests
into the software request table, make scheduling decisions, execute DRAM
command batches through Bender, tag responses with the processor-cycle
value at which they may be consumed, and advance the time-scaling
counters.

Timeline model
--------------

All bookkeeping runs on the *emulated* time axis (picoseconds of the
modeled system).  Two cursors track the controller:

``sched_cursor``
    when the controller front-end can start working on the next request;
``dram_cursor``
    when the DRAM interface is free (Bender programs execute back to
    back on a real chip, so device time is strictly monotonic).

A request's *latency* always includes the full software scheduling path;
its *occupancy* (how soon the next request can start) depends on the
configuration: pipelined controllers (the modeled hardware of a time-
scaled system) accept a new request every few cycles, while a bare
software controller ("No Time Scaling") serializes everything — the
pathology of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bender.engine import ExecResult
from repro.bender.program import BenderProgram
from repro.core.config import SystemConfig
from repro.core.easyapi import EasyAPI, ProgramExecutor
from repro.core.schedulers import (
    Scheduler,
    TableEntry,
    make_scheduler,
    scheduler_override,
)
from repro.core.tile import EasyTile
from repro.core.timescale import TimeScalingCounters
from repro.cpu.processor import MemoryRequest
from repro.dram.commands import Command, CommandKind
from repro.dram.flat_timing import K_ACT, K_PRE, K_PREA, K_RD, K_REF, K_WR
from repro.dram.timing import period_ps
from repro.fastpath import fastpath_enabled


@dataclass
class SmcStats:
    """Controller-side counters."""

    serviced_reads: int = 0
    serviced_writes: int = 0
    #: Prefetch-tagged fills, counted apart from demand reads so
    #: prefetching never inflates demand-attribution counts.
    serviced_prefetches: int = 0
    refreshes: int = 0
    #: Refreshes beyond the nominal tREFI cadence, issued because an
    #: ``InterferenceConfig.refresh_storm_factor`` > 1 multiplied the
    #: refresh rate.  Always 0 at the paper's default.
    storm_refreshes: int = 0
    technique_ops: int = 0
    total_sched_cycles: int = 0
    batches_executed: int = 0
    #: Row-tRCD memo inserts the cell model skipped at its cap
    #: (:attr:`~repro.dram.cells.CellArrayModel.TRCD_CACHE_LIMIT`);
    #: synced from the device at session finish.  Always 0 on the
    #: experiment topologies — they fit under the cap outright.
    trcd_memo_capped: int = 0


#: Row-buffer outcome string -> the flat case index the plans use.
_ROW_CASE = {"hit": 0, "miss": 1, "conflict": 2}

#: Smallest batch the per-gate kernel entry is worth engaging for: the
#: FFI load/store pair is a fixed cost, and below this size the
#: select-free fastpath closures win (singletons are ~2x faster there).
#: Block traces never see this — their whole trace replays resident in
#: the kernel (:mod:`repro.dram.kernel.blockrun`) regardless of gate
#: size.  Every serve path stays bit-identical, so the cutover is pure
#: host-time tuning.
_KERNEL_MIN_BATCH = 4


class SoftwareMemoryController(ProgramExecutor):
    """Conventional open-page controller; techniques subclass or hook it."""

    def __init__(self, config: SystemConfig, tile: EasyTile, api: EasyAPI,
                 counters: TimeScalingCounters,
                 scheduler: Scheduler | None = None) -> None:
        self.config = config
        self.tile = tile
        self.api = api
        self.api.executor = self
        self.counters = counters
        self.scheduler = scheduler or make_scheduler(
            scheduler_override() or config.controller.scheduler,
            config.controller.scheduler_age_cap)
        self.stats = SmcStats()
        self.table: list[TableEntry] = []
        self._arrival_counter = 0
        self.sched_cursor = 0          # emulated ps
        self.dram_cursor = 0           # emulated ps
        self._exec_anchor_ps = 0       # where the next flushed batch starts
        # Refresh cadence: nominal tREFI, divided by the interference
        # refresh-storm factor (1 at the paper's default — identical
        # deadlines).  Clamped to one interface cycle so a huge factor
        # cannot wedge the deadline loops.
        self._storm_factor = config.interference.refresh_storm_factor
        self._refresh_interval = max(
            config.timing.tCK, config.timing.tREFI // self._storm_factor)
        self._refresh_index = 0
        self._next_refresh_ps = self._refresh_interval
        self._proc_period = period_ps(config.processor.emulated_freq_hz)
        mcd = config.controller_domain
        self._mc_period = mcd.emulated_period_ps
        cc = config.controller
        self._occupancy_ps = cc.pipelined_occupancy_cycles * self._mc_period
        self._pipelined = cc.pipelined_occupancy_cycles > 0
        self._req_bus_ps = cc.request_bus_cycles * self._mc_period
        self._resp_bus_ps = cc.response_bus_cycles * self._mc_period
        #: Technique hook: may replace the read/write staging for a request.
        self.serve_hook = None
        #: Per-core service tracker (multi-core sessions only; see
        #: :meth:`set_core_tracker`).  ``None`` on the paper's
        #: single-core system, which keeps every serve path unchanged.
        self._core_tracker = None
        # Stable tile internals, hoisted off the per-request path.
        self._tile_stats = tile.stats
        self._device = tile.device
        self._flat = tile.device.flat
        self._flat_earliest = tile.device.flat.earliest
        self._issue_plan = tile.device.issue_plan
        self._issue_col = tile.device.issue_col
        self._bender = tile.engine
        self._mapper = tile.mapper
        # Array-native fast path (REPRO_FASTPATH): memoized conventional
        # command plans + flat timing-state queries.  Off, the batched
        # path runs the PR 2 object pipeline unchanged.
        self._fastpath = fastpath_enabled()
        if self._fastpath:
            self._build_plans()
        # Compiled batch kernel (REPRO_KERNEL): resolved lazily on the
        # first eligible batch; see :meth:`service_pending_kernel`.
        self._kernel_state = None
        self._kernel_backend = None
        self._kernel_resolved = False
        #: Why the kernel last disengaged (``repro profile`` reports it);
        #: ``None`` while the kernel is engaged or untried.
        self.kernel_fallback_reason = None

    @property
    def scheduler(self) -> Scheduler:
        """The request scheduler (reassignable, e.g. by the ablations)."""
        return self._scheduler

    @scheduler.setter
    def scheduler(self, value: Scheduler) -> None:
        self._scheduler = value
        # The fast-path episode functions close over the scheduler (its
        # select and decision-cost hooks); swapping it rebuilds them.
        if getattr(self, "_fastpath", False) and hasattr(self, "_plans"):
            self._decision_cost_1 = value.decision_cost(1)
            self._service_single = self._make_service_single()
            self._service_fast = self._make_service_fast()
        # The kernel bakes the scheduler's policy and decision costs into
        # its config table: force re-resolution on the next batch.
        self._kernel_state = None
        self._kernel_resolved = False

    def set_core_tracker(self, tracker) -> None:
        """Install (or clear) the shared per-core service tracker.

        The tracker attributes every serviced request's direction and
        row-buffer outcome to the issuing core
        (:class:`~repro.core.stats.CoreServiceTracker`).  The fast-path
        serve closures bind it at build time, so installing one rebuilds
        them — exactly like swapping the scheduler does.
        """
        self._core_tracker = tracker
        if self._fastpath:
            self._serve_flat_core = self._make_serve_flat()
            self._service_single = self._make_service_single()
            self._service_fast = self._make_service_fast()
        self._kernel_state = None
        self._kernel_resolved = False

    def _build_plans(self) -> None:
        """Memoize the conventional open-page command plans.

        A plan depends only on the row-buffer case (0 = hit, 1 = closed
        bank, 2 = conflict) and the access direction, never on the
        concrete bank/row/column — those are patched in at issue time.
        Each entry is ``(kinds, offsets, total_cycles, stage_charge,
        measured_ps, post_flush_ps)`` with offsets in interface cycles,
        reproducing :meth:`_plan_conventional` exactly.
        """
        t = self.config.timing
        tck = t.tCK
        costs = self.api.costs
        ci = costs.command_insert
        bender_domain = self.config.bender_domain
        plans: dict[tuple[int, bool], tuple] = {}
        for case in (0, 1, 2):
            for is_write in (False, True):
                kinds: list[int] = []
                offsets: list[int] = []
                offset = 0
                n_instr = 0
                charge = 0
                if case == 2:
                    kinds.append(K_PRE)
                    offsets.append(0)
                    offset = 1
                    n_instr = 1
                    charge = ci
                    gap = t.tRP - tck
                    if gap > 0:
                        offset += -(-gap // tck)
                        n_instr += 1
                if case >= 1:
                    kinds.append(K_ACT)
                    offsets.append(offset)
                    offset += 1
                    n_instr += 1
                    charge += ci
                    gap = t.tRCD - tck
                    if gap > 0:
                        offset += -(-gap // tck)
                        n_instr += 1
                kinds.append(K_WR if is_write else K_RD)
                offsets.append(offset)
                offset += 1
                n_instr += 1
                charge += ci
                plans[(case, is_write)] = (
                    tuple(kinds), tuple(offsets), offset, charge,
                    bender_domain.measure_ps(offset * tck),
                    (costs.flush + costs.per_instruction_transfer * n_instr)
                    * self._mc_period)
        self._plans = plans
        # Indexable view: plan of (case, is_write) at [2*case + is_write].
        self._plan_list = tuple(plans[(case, w)] for case in (0, 1, 2)
                                for w in (False, True))
        self._transfer_charge = (costs.receive_request + costs.address_map
                                 + costs.table_insert)
        self._critical_toggle = costs.critical_toggle
        self._decision_cost_1 = self.scheduler.decision_cost(1)
        self._refresh_enabled = self.config.controller.refresh_enabled
        self._decode_cache = self._mapper._decode_cache
        self._tck = tck
        self._lat_rd_ps = t.tCL + t.tBL
        self._lat_wr_ps = t.tCWL + t.tBL
        # Refresh episode constants (precharge_all + WAIT(tRP) + refresh
        # + WAIT(tRFC), one interface cycle per command).
        self._ref_cycles = 2 + -(-t.tRP // tck) + -(-t.tRFC // tck)
        self._ref_offset_ps = (1 + -(-t.tRP // tck)) * tck
        self._ref_measured = bender_domain.measure_ps(self._ref_cycles * tck)
        self._serve_flat_core = self._make_serve_flat()
        self._service_single = self._make_service_single()
        self._service_fast = self._make_service_fast()

    # -- ProgramExecutor --------------------------------------------------------

    def execute_staged(self, program: BenderProgram,
                       respect_timing: bool) -> ExecResult:
        """Run a staged batch at the controller's current anchor time."""
        start = max(self._exec_anchor_ps, self.dram_cursor)
        if respect_timing:
            start = max(start, self._earliest_legal(program))
        result = self.tile.engine.execute(program, start_ps=start)
        measured = self.config.bender_domain.measure_ps(result.elapsed_ps)
        self.dram_cursor = start + measured
        self.tile.stats.dram_busy_ps += measured
        self.stats.batches_executed += 1
        return result

    def _earliest_legal(self, program: BenderProgram) -> int:
        """Earliest legal time of the batch's first DRAM command."""
        for ins in program.instructions:
            if ins.command is not None:
                device = self.tile.device
                earliest, _ = device.checker.earliest_issue(
                    ins.command, device.banks, device.checker_rank)
                return earliest
        return 0

    # -- request servicing (Fig 6 steps 4-10) --------------------------------------

    def service_pending(self, requests: list[MemoryRequest]) -> None:
        """Serve every pending request; sets each request's release."""
        if not requests:
            return
        if (len(requests) >= _KERNEL_MIN_BATCH
                and self.service_pending_kernel(requests)):
            return
        self.counters.enter_critical()
        self.api.set_scheduling_state(True)
        arrivals = sorted(requests, key=lambda r: r.tag)
        now = max(self.sched_cursor,
                  arrivals[0].tag * self._proc_period + self._req_bus_ps)
        self.sched_cursor = now
        while arrivals or self.table:
            arrivals = self._transfer_arrivals(arrivals)
            if not self.table:
                # The remaining requests were issued later than the
                # controller's current emulation point: wait for them.
                next_arrival = (arrivals[0].tag * self._proc_period
                                + self._req_bus_ps)
                self.sched_cursor = max(self.sched_cursor, next_arrival)
                continue
            self._maybe_refresh()
            self.api.charge(self.scheduler.decision_cost(len(self.table)))
            entry = self.scheduler.select(self.table, self.tile.device.banks)
            self.table.remove(entry)
            self._serve(entry)
        self.api.set_scheduling_state(False)
        self._sync_mc_counter()
        self.counters.exit_critical()

    def _transfer_arrivals(self, arrivals: list[MemoryRequest]) -> list[MemoryRequest]:
        """Move requests visible at the current point into the table.

        Footnote 2: the controller observes every request the processors
        created up to its own emulation point before deciding.
        """
        remaining: list[MemoryRequest] = []
        for request in arrivals:
            arrival_ps = request.tag * self._proc_period + self._req_bus_ps
            if arrival_ps <= self.sched_cursor or not self.table:
                self.tile.push_request(request)
                received = self.api.get_request()
                dram = self.api.get_addr_mapping(received.addr)
                self.api.charge(self.api.costs.table_insert)
                self.table.append(TableEntry(
                    request=received, dram=dram,
                    arrival_order=self._arrival_counter))
                self._arrival_counter += 1
                self.sched_cursor = max(self.sched_cursor, arrival_ps)
            else:
                remaining.append(request)
        return remaining

    def _serve(self, entry: TableEntry) -> None:
        """Serve one request: stage, execute, tag the response."""
        request = entry.request
        sched_start = self.sched_cursor
        outcome = self.tile.classify_row_access(entry.dram.bank, entry.dram.row)
        # A store miss is a *line fill* — a DRAM read; the dirty data
        # returns to DRAM later as a writeback.  Only writebacks issue WR.
        is_dram_write = request.is_writeback
        if self._core_tracker is not None:
            if request.is_prefetch:
                self._core_tracker.note_prefetch(request.core)
            else:
                self._core_tracker.note(request.core, _ROW_CASE[outcome],
                                        is_dram_write)
        if self.serve_hook is not None:
            self.serve_hook(self.api, entry)
        else:
            self.api.stage_conventional(entry.dram, is_dram_write)
        sched_cycles = self.api.take_charges()
        self.stats.total_sched_cycles += sched_cycles
        sched_ps = sched_cycles * self._mc_period
        self.tile.stats.scheduling_ps += sched_ps
        self._exec_anchor_ps = sched_start + sched_ps
        result = self.api.flush_commands()
        sched_ps += self.api.take_charges() * self._mc_period
        dram_end = self.dram_cursor
        release_ps = (dram_end + self.api.data_latency_ps(is_dram_write)
                      + self._resp_bus_ps)
        request.release = -(-release_ps // self._proc_period)
        request.service_ps = dram_end - sched_start
        if is_dram_write:
            self.stats.serviced_writes += 1
        else:
            if request.is_prefetch:
                self.stats.serviced_prefetches += 1
            else:
                self.stats.serviced_reads += 1
            # Drain the readback data the fill consumed.
            for _ in range(result.reads):
                self.api.rdback_cacheline()
        self.api.charge(self.api.costs.enqueue_response)
        self.api.take_charges()
        self.tile.stats.responses_sent += 1
        if self._pipelined:
            self.sched_cursor = max(sched_start + self._occupancy_ps,
                                    self.sched_cursor)
        else:
            self.sched_cursor = max(self.dram_cursor, sched_start + sched_ps)

    # -- bank-parallel critical-mode servicing (event-engine fast path) ------------

    def service_pending_batched(
            self, requests: list[MemoryRequest],
            refresh_sink: Callable[[int], None] | None = None) -> bool:
        """Serve every pending request on the batched bank-parallel path.

        Semantically identical to :meth:`service_pending` — same emulated
        timeline, same statistics, same violation records — but the host
        work per request collapses to integer arithmetic: the
        conventional open-page command sequences are *planned* (command
        kinds plus interface-cycle offsets) instead of staged through
        :class:`BenderProgram` objects and walked by the Bender engine,
        and every timing-legality question is answered by the timing
        checker's batched per-bank query (:meth:`TimingChecker.earliest_ps`)
        so independent banks are resolved in one fused pass instead of
        one candidate object per (bank, constraint) pair.

        Falls back to the reference path — and returns ``False`` — when a
        technique hook is installed or the tile holds state the planner
        cannot see (a non-empty request FIFO or a partially staged
        program).  ``refresh_sink`` is called with each serviced tREFI
        deadline so the event engine can log refreshes that landed inside
        a skipped interval.
        """
        if not requests:
            return True
        if (len(requests) >= _KERNEL_MIN_BATCH
                and self.service_pending_kernel(requests, refresh_sink)):
            return True
        if (self.serve_hook is not None or self.tile.has_requests
                or len(self.api.program)):
            self.service_pending(requests)
            return False
        if self._fastpath:
            # Stateful schedulers must run selection once per serve, so
            # the select-free singleton episode is reserved for the
            # stateless policies.
            if (len(requests) == 1 and not self.table
                    and not self._scheduler.stateful):
                self._service_single(requests[0], refresh_sink)
            else:
                self._service_fast(requests, refresh_sink)
            return True
        api = self.api
        costs = api.costs
        self.counters.enter_critical()
        api.charged_cycles += costs.critical_toggle  # set_scheduling_state(True)
        api.critical = True
        arrivals = sorted(requests, key=lambda r: r.tag)
        now = arrivals[0].tag * self._proc_period + self._req_bus_ps
        if self.sched_cursor > now:
            now = self.sched_cursor
        self.sched_cursor = now
        table = self.table
        scheduler = self.scheduler
        banks = self.tile.device.banks
        while arrivals or table:
            arrivals = self._transfer_arrivals_batched(arrivals)
            if not table:
                next_arrival = (arrivals[0].tag * self._proc_period
                                + self._req_bus_ps)
                if next_arrival > self.sched_cursor:
                    self.sched_cursor = next_arrival
                continue
            self._maybe_refresh_batched(refresh_sink)
            api.charged_cycles += scheduler.decision_cost(len(table))
            entry = scheduler.select(table, banks)
            table.remove(entry)
            self._serve_batched(entry)
        api.charged_cycles += costs.critical_toggle  # set_scheduling_state(False)
        api.critical = False
        self._sync_mc_counter()
        self.counters.exit_critical()
        return True

    # -- compiled batch kernel (REPRO_KERNEL) --------------------------------------

    def _kernel_structural_reason(self) -> str | None:
        """Why the kernel cannot serve this controller at all, or ``None``.

        These conditions are fixed for the controller's lifetime (modulo
        scheduler swaps, which re-resolve): the kernel reproduces the
        conventional open-page path only, so anything that adds
        per-command observable behavior it does not model forces the
        fastpath closures.
        """
        from repro.core.schedulers import FCFS, FRFCFS
        if not self._fastpath:
            return "fastpath disabled (REPRO_FASTPATH=0)"
        if type(self._scheduler) not in (FCFS, FRFCFS):
            return ("stateful scheduler "
                    f"({type(self._scheduler).__name__})")
        device = self._device
        if device.checker.strict:
            return "strict timing mode"
        if device.retention_modeling:
            return "retention modeling enabled"
        if device.row_activations is not None:
            return "row-activation tracking enabled"
        if not device._inline_earliest:
            return "non-uniform bank-group timing"
        if self._mapper.geometry.ranks != 1:
            return "multi-rank channel"
        if device._refresh_rank is not None:
            return "per-rank refresh"
        cells = device.cells.config
        if max(cells.strong_max_ps, cells.weak_max_ps) > self.config.timing.tRCD:
            # The kernel skips the per-RD reliability probe; that is
            # only unobservable when no in-margin row can exist.
            return "cell tRCD margins exceed tRCD"
        return None

    def _kernel_resolve(self):
        """Resolve (once) whether the kernel may serve, building its state."""
        from repro.dram.kernel import resolve_backend
        self._kernel_resolved = True
        self._kernel_state = None
        reason = self._kernel_structural_reason()
        if reason is None:
            backend, reason = resolve_backend()
            if backend is not None:
                from repro.dram.kernel.state import KernelState
                self._kernel_backend = backend
                self._kernel_state = KernelState(self)
                self.kernel_fallback_reason = None
                return self._kernel_state
        self.kernel_fallback_reason = reason
        return None

    def service_pending_kernel(
            self, requests: list[MemoryRequest],
            refresh_sink: Callable[[int], None] | None = None) -> bool:
        """Serve a whole drained batch inside the compiled kernel.

        The fourth serve path: bit-identical to :meth:`service_pending`
        (and therefore to both fast paths), but the entire episode —
        arrival transfer, FR-FCFS arbitration, plan issue, timing-
        legality resolution, refresh interleave, and stat attribution —
        runs as one compiled call over the struct-of-arrays tables in
        :mod:`repro.dram.kernel.state`.  Returns ``False`` with all
        state untouched when the kernel is disengaged or a technique
        hook / staged tile state needs the object path; the caller then
        falls back to :meth:`service_pending_batched`.
        """
        if not requests:
            return True
        ks = self._kernel_state if self._kernel_resolved \
            else self._kernel_resolve()
        if ks is None:
            return False
        if self.serve_hook is not None:
            self.kernel_fallback_reason = "technique episode (serve hook)"
            return False
        if self.tile.has_requests or len(self.api.program):
            self.kernel_fallback_reason = "staged tile state pending"
            return False
        from repro.dram.kernel.state import (
            FLAG_PREFETCH, FLAG_WRITEBACK, KERN_OK, KERR_DECODE_RANGE, St,
        )
        n = len(requests)
        if n > 1:
            requests = sorted(requests, key=lambda r: r.tag)
        ks.ensure_requests(n)
        ks.ensure_viol(3 * n + 64)
        ks.ensure_wrhit(n + 16)
        tag = ks.req_tag
        addr = ks.req_addr
        flags = ks.req_flags
        core = ks.req_core
        for i, request in enumerate(requests):
            tag[i] = request.tag
            addr[i] = request.addr
            flags[i] = ((FLAG_WRITEBACK if request.is_writeback else 0)
                        | (FLAG_PREFETCH if request.is_prefetch else 0))
            core[i] = request.core
        if len(self._device._rows) != int(ks.st[St.NMAT]):
            ks.refresh_materialized()
        ks.load()
        ks.st[St.N_REQ] = n
        before_refresh = self._next_refresh_ps
        err = self._kernel_run_batch(ks)
        if err != KERN_OK and err != KERR_DECODE_RANGE:
            raise RuntimeError(f"batch kernel failed with error {err}")
        ks.store()
        ks.scatter_violations()
        ks.apply_wr_hits()
        ks.emit_refreshes(refresh_sink, before_refresh)
        if err == KERR_DECODE_RANGE:
            # Raise the mapper's own out-of-range ValueError, with all
            # partial state (stats, charges) already written back.
            self._mapper._check_range(int(ks.st[St.ERR_ADDR]))
            raise AssertionError("decode error did not reproduce")
        release = ks.req_release
        service = ks.req_service
        for i, request in enumerate(requests):
            request.release = int(release[i])
            request.service_ps = int(service[i])
        return True

    def _kernel_run_batch(self, ks) -> int:
        backend = self._kernel_backend
        run_state = getattr(backend, "serve_batch_state", None)
        if run_state is not None:  # pure-Python mirror (REPRO_KERNEL=py)
            return run_state(ks)
        return int(backend.serve_batch(ks.pointer_table()))

    def _make_service_fast(self):
        """Build the batched flat-path service loop (constants closed over).

        Observable behavior matches the reference loop above exactly;
        host-side, arrivals are consumed through an index (requests sort
        by tag, so the transferable set is always a prefix — the
        reference's repeated full rescans cannot admit anything more),
        the scheduler runs its flat-array select, and requests are
        served by the flat serve function.
        """
        from operator import attrgetter

        api = self.api
        counters = self.counters
        toggle = self._critical_toggle
        pp = self._proc_period
        bus = self._req_bus_ps
        scheduler = self.scheduler
        select_flat = getattr(scheduler, "select_flat", None)
        stateful = scheduler.stateful
        decision_cost = scheduler.decision_cost
        open_row = self._flat.open_row
        banks = self._device.banks
        tile_stats = self._tile_stats
        transfer_charge = self._transfer_charge
        decode = self._decode_cache
        to_dram = self._mapper.to_dram
        refresh_enabled = self._refresh_enabled
        serve = self._serve_flat_core
        refresh = self._maybe_refresh_flat
        by_tag = attrgetter("tag")

        make_entry = (lambda request, dram, order: (order, request, dram)) \
            if select_flat is not None else TableEntry

        def service_fast(requests: list[MemoryRequest],
                         refresh_sink: Callable[[int], None] | None) -> None:
            counters.enter_critical()
            api.charged_cycles += toggle  # set_scheduling_state(True)
            api.critical = True
            arrivals = sorted(requests, key=by_tag) \
                if len(requests) > 1 else requests
            now = arrivals[0].tag * pp + bus
            if self.sched_cursor > now:
                now = self.sched_cursor
            self.sched_cursor = now
            table = self.table
            arrival_counter = self._arrival_counter
            pos = 0
            n = len(arrivals)
            while pos < n or table:
                cursor = self.sched_cursor
                while pos < n:
                    request = arrivals[pos]
                    arrival_ps = request.tag * pp + bus
                    if arrival_ps <= cursor or not table:
                        tile_stats.requests_received += 1
                        api.charged_cycles += transfer_charge
                        addr = request.addr
                        dram = decode.get(addr)
                        if dram is None:
                            dram = to_dram(addr)
                        table.append(make_entry(request, dram,
                                                arrival_counter))
                        arrival_counter += 1
                        if arrival_ps > cursor:
                            cursor = arrival_ps
                        pos += 1
                    else:
                        break
                self.sched_cursor = cursor
                if not table:
                    next_arrival = arrivals[pos].tag * pp + bus
                    if next_arrival > cursor:
                        self.sched_cursor = next_arrival
                    continue
                if refresh_enabled and self._next_refresh_ps <= self.sched_cursor:
                    refresh(refresh_sink)
                count = len(table)
                api.charged_cycles += decision_cost(count)
                if select_flat is not None:
                    if count == 1 and not stateful:
                        _order, request, dram = table.pop()
                    else:
                        entry = select_flat(table, open_row)
                        table.remove(entry)
                        _order, request, dram = entry
                    serve(request, dram)
                else:
                    if count == 1 and not stateful:
                        entry = table.pop()
                    else:
                        entry = scheduler.select(table, banks)
                        table.remove(entry)
                    serve(entry.request, entry.dram)
            self._arrival_counter = arrival_counter
            api.charged_cycles += toggle  # set_scheduling_state(False)
            api.critical = False
            self._sync_mc_counter()
            counters.exit_critical()

        return service_fast

    def _make_service_single(self):
        """Build the one-request episode function (constants closed over).

        The dominant episode shape of dependent-load streams (every
        pointer-chase miss gates the core, so batches are singletons).
        Exactly the generic loop specialized for ``len(requests) == 1``
        with an empty table: same charges, cursor updates, and arrival
        bookkeeping, without the table/scheduler machinery.
        """
        api = self.api
        counters = self.counters
        tile_stats = self._tile_stats
        decode = self._decode_cache
        to_dram = self._mapper.to_dram
        proc_period = self._proc_period
        bus = self._req_bus_ps
        toggle = self._critical_toggle
        transfer_charge = self._transfer_charge
        decision_1 = self._decision_cost_1
        no_refresh_charge = toggle + transfer_charge + decision_1
        refresh_enabled = self._refresh_enabled
        serve = self._serve_flat_core
        refresh = self._maybe_refresh_flat

        def service_single(request: MemoryRequest,
                           refresh_sink: Callable[[int], None] | None) -> None:
            counters.enter_critical()
            api.critical = True
            now = request.tag * proc_period + bus
            if self.sched_cursor > now:
                now = self.sched_cursor
            self.sched_cursor = now
            # Transfer (always immediate: the table is empty).
            tile_stats.requests_received += 1
            addr = request.addr
            dram = decode.get(addr)
            if dram is None:
                dram = to_dram(addr)
            self._arrival_counter += 1
            if refresh_enabled and self._next_refresh_ps <= now:
                api.charged_cycles += toggle + transfer_charge
                refresh(refresh_sink)
                api.charged_cycles += decision_1
            else:
                api.charged_cycles += no_refresh_charge
            serve(request, dram)
            api.charged_cycles += toggle
            api.critical = False
            self._sync_mc_counter()
            counters.exit_critical()

        return service_single

    def _transfer_arrivals_batched(
            self, arrivals: list[MemoryRequest]) -> list[MemoryRequest]:
        """:meth:`_transfer_arrivals` with the API call costs pre-summed."""
        api = self.api
        costs = api.costs
        transfer_charge = (costs.receive_request + costs.address_map
                           + costs.table_insert)
        mapper = self._mapper
        decode_cache = mapper._decode_cache
        to_dram = mapper.to_dram
        table = self.table
        tile_stats = self._tile_stats
        pp = self._proc_period
        bus = self._req_bus_ps
        remaining: list[MemoryRequest] = []
        for request in arrivals:
            arrival_ps = request.tag * pp + bus
            if arrival_ps <= self.sched_cursor or not table:
                tile_stats.requests_received += 1
                api.charged_cycles += transfer_charge
                addr = request.addr
                dram = decode_cache.get(addr)
                if dram is None:
                    dram = to_dram(addr)
                table.append(TableEntry(
                    request=request, dram=dram,
                    arrival_order=self._arrival_counter))
                self._arrival_counter += 1
                if arrival_ps > self.sched_cursor:
                    self.sched_cursor = arrival_ps
            else:
                remaining.append(request)
        return remaining

    def _plan_conventional(
            self, dram, is_dram_write: bool) -> tuple[list, int, int, int]:
        """Plan the open-page command sequence for one request.

        Returns ``(commands, instruction_count, interface_cycles,
        staging_charge)`` where ``commands`` is a list of
        ``(Command, cycle_offset)`` pairs.  The offsets reproduce the
        Bender engine's walk of the staged program exactly: one interface
        cycle per DDR command plus the explicit WAITs that
        ``read_sequence``/``write_sequence`` insert (``wait_after_command_ps``
        rounds each gap up to the interface clock, minus the command's
        own cycle).
        """
        t = self.config.timing
        tck = t.tCK
        ci = self.api.costs.command_insert
        state = self.tile.device.banks[dram.bank]
        cmds: list[tuple[Command, int]] = []
        offset = 0
        n_instr = 0
        charge = 0
        if state.open_row != dram.row:
            if state.open_row is not None:
                cmds.append((Command(CommandKind.PRE, bank=dram.bank), 0))
                offset = 1
                n_instr = 1
                charge = ci
                gap = t.tRP - tck
                if gap > 0:
                    offset += -(-gap // tck)
                    n_instr += 1
            cmds.append(
                (Command(CommandKind.ACT, bank=dram.bank, row=dram.row), offset))
            offset += 1
            n_instr += 1
            charge += ci
            gap = t.tRCD - tck
            if gap > 0:
                offset += -(-gap // tck)
                n_instr += 1
        kind = CommandKind.WR if is_dram_write else CommandKind.RD
        cmds.append((Command(kind, bank=dram.bank, col=dram.col), offset))
        offset += 1
        n_instr += 1
        charge += ci
        return cmds, n_instr, offset, charge

    def _serve_batched(self, entry: TableEntry) -> None:
        """:meth:`_serve` on the planned-command path (no staged program)."""
        request = entry.request
        api = self.api
        costs = api.costs
        dram = entry.dram
        sched_start = self.sched_cursor
        outcome = self.tile.classify_row_access(dram.bank, dram.row)
        is_dram_write = request.is_writeback
        if self._core_tracker is not None:
            if request.is_prefetch:
                self._core_tracker.note_prefetch(request.core)
            else:
                self._core_tracker.note(request.core, _ROW_CASE[outcome],
                                        is_dram_write)
        cmds, n_instr, total_cycles, stage_charge = self._plan_conventional(
            dram, is_dram_write)
        sched_cycles = api.charged_cycles + stage_charge
        api.charged_cycles = 0
        self.stats.total_sched_cycles += sched_cycles
        sched_ps = sched_cycles * self._mc_period
        self.tile.stats.scheduling_ps += sched_ps
        self._exec_anchor_ps = sched_start + sched_ps
        # flush_commands(), inlined: the staged batch executes at the
        # anchor, pushed to the first command's earliest legal time.
        device = self.tile.device
        start = self._exec_anchor_ps
        if self.dram_cursor > start:
            start = self.dram_cursor
        earliest = device.checker.earliest_ps(
            cmds[0][0], device.banks, device.checker_rank)
        if earliest > start:
            start = earliest
        tck = self.config.timing.tCK
        issue = device.issue_discard
        first = True
        for cmd, off in cmds:
            # The first command was already cleared against ``earliest``.
            issue(cmd, start + off * tck, precleared=first)
            first = False
        bender = self.tile.engine
        bender.programs_run += 1
        bender.total_interface_cycles += total_cycles
        measured = self.config.bender_domain.measure_ps(total_cycles * tck)
        self.dram_cursor = start + measured
        self.tile.stats.dram_busy_ps += measured
        self.stats.batches_executed += 1
        sched_ps += (costs.flush
                     + costs.per_instruction_transfer * n_instr) * self._mc_period
        dram_end = self.dram_cursor
        release_ps = (dram_end + api.data_latency_ps(is_dram_write)
                      + self._resp_bus_ps)
        request.release = -(-release_ps // self._proc_period)
        request.service_ps = dram_end - sched_start
        if is_dram_write:
            self.stats.serviced_writes += 1
        elif request.is_prefetch:
            self.stats.serviced_prefetches += 1
        else:
            self.stats.serviced_reads += 1
        # The cycle engine pops the readback line(s) and charges
        # rdback/enqueue_response cycles that the reference path then
        # discards unconsumed; mirror the discard.
        api.charged_cycles = 0
        self.tile.stats.responses_sent += 1
        if self._pipelined:
            occupied = sched_start + self._occupancy_ps
            if occupied > self.sched_cursor:
                self.sched_cursor = occupied
        else:
            cursor = sched_start + sched_ps
            if self.dram_cursor > cursor:
                cursor = self.dram_cursor
            self.sched_cursor = cursor

    def _maybe_refresh_batched(
            self, refresh_sink: Callable[[int], None] | None) -> None:
        """:meth:`_maybe_refresh` on the planned-command path."""
        if not self.config.controller.refresh_enabled:
            return
        if self._next_refresh_ps > self.sched_cursor:
            return
        api = self.api
        t = self.config.timing
        tck = t.tCK
        device = self.tile.device
        bender = self.tile.engine
        # precharge_all + WAIT(tRP) + refresh + WAIT(tRFC), one interface
        # cycle per command plus the rounded-up waits.
        total_cycles = 2 + -(-t.tRP // tck) + -(-t.tRFC // tck)
        ref_offset = 1 + -(-t.tRP // tck)
        elapsed = total_cycles * tck
        measured = self.config.bender_domain.measure_ps(elapsed)
        while self._next_refresh_ps <= self.sched_cursor:
            api.charged_cycles = 0  # staging + accumulated charges discarded
            anchor = self.sched_cursor
            self._exec_anchor_ps = anchor
            start = anchor if anchor >= self.dram_cursor else self.dram_cursor
            prea = Command(CommandKind.PREA)
            earliest = device.checker.earliest_ps(prea, device.banks,
                                                  device.checker_rank)
            if earliest > start:
                start = earliest
            device.issue_discard(prea, start, precleared=True)
            device.issue_discard(Command(CommandKind.REF), start + ref_offset * tck)
            bender.programs_run += 1
            bender.total_interface_cycles += total_cycles
            self.dram_cursor = start + measured
            self.tile.stats.dram_busy_ps += measured
            self.stats.batches_executed += 1
            api.charged_cycles = 0  # flush charges discarded
            self.stats.refreshes += 1
            self.tile.stats.refreshes_issued += 1
            if self._storm_factor > 1:
                self._refresh_index += 1
                if self._refresh_index % self._storm_factor:
                    self.stats.storm_refreshes += 1
            if refresh_sink is not None:
                refresh_sink(self._next_refresh_ps)
            self._next_refresh_ps += self._refresh_interval
            if not self._pipelined:
                if self.dram_cursor > self.sched_cursor:
                    self.sched_cursor = self.dram_cursor

    # -- array-native critical-mode servicing (REPRO_FASTPATH) ---------------------

    def _make_serve_flat(self):
        """Build the flat-path serve function with constants closed over.

        Emulated-timeline arithmetic is identical to
        :meth:`_serve_batched`; the host work per request drops to: one
        row-buffer classification on the flat ``open_row`` array, one
        memoized plan fetch, one flat earliest-time query for the
        leading command, and one fused device call for the plan — no
        ``Command`` construction and no per-bank object scans.  Every
        run-constant (plans, periods, latencies, stable subobjects)
        lives in a closure cell instead of an attribute lookup.
        """
        api = self.api
        plan_list = self._plan_list
        mc_period = self._mc_period
        tile_stats = self._tile_stats
        stats = self.stats
        flat = self._flat
        open_row_arr = flat.open_row
        flat_earliest = self._flat_earliest
        issue_plan = self._issue_plan
        issue_col = self._issue_col
        bender = self._bender
        tck = self._tck
        lat_rd = self._lat_rd_ps
        lat_wr = self._lat_wr_ps
        resp_bus = self._resp_bus_ps
        proc_period = self._proc_period
        pipelined = self._pipelined
        occupancy = self._occupancy_ps
        # Leading-command earliest-time formulas, inlined when the
        # two-term aggregate reductions are exact for this parameter set
        # (see FlatTimingState); otherwise the generic query runs.
        inline_earliest = flat._rrd_two_term and flat._ccd_two_term
        t = self.config.timing
        tRCD, tCCD_S, tCCD_L, tWTR = t.tRCD, t.tCCD_S, t.tCCD_L, t.tWTR
        tRC, tRP, tRRD_S, tRRD_L = t.tRC, t.tRP, t.tRRD_S, t.tRRD_L
        tRAS, tRTP, tWR, tFAW, tRFC = t.tRAS, t.tRTP, t.tWR, t.tFAW, t.tRFC
        last_act_arr = flat.last_act
        last_pre_arr = flat.last_pre
        last_read_arr = flat.last_read
        last_write_end_arr = flat.last_write_end
        gmax_cas_arr = flat.group_max_cas
        gmax_act_arr = flat.group_max_act
        group_of = flat.group_of
        tracker = self._core_tracker
        track = tracker.note if tracker is not None else None
        track_prefetch = (tracker.note_prefetch if tracker is not None
                          else None)

        def serve(request: MemoryRequest, dram) -> None:
            bank = dram.bank
            row = dram.row
            sched_start = self.sched_cursor
            # classify_row_access, inlined on the flat open-row array.
            open_row = open_row_arr[bank]
            if open_row == row:
                tile_stats.row_hits += 1
                case = 0
            elif open_row < 0:
                tile_stats.row_misses += 1
                case = 1
            else:
                tile_stats.row_conflicts += 1
                case = 2
            is_dram_write = request.is_writeback
            if track is not None:
                if request.is_prefetch:
                    track_prefetch(request.core)
                else:
                    track(request.core, case, is_dram_write)
            (kinds, offsets, total_cycles, stage_charge, measured,
             post_flush_ps) = plan_list[case + case + is_dram_write]
            sched_cycles = api.charged_cycles + stage_charge
            api.charged_cycles = 0
            stats.total_sched_cycles += sched_cycles
            sched_ps = sched_cycles * mc_period
            tile_stats.scheduling_ps += sched_ps
            start = self._exec_anchor_ps = sched_start + sched_ps
            dram_cursor = self.dram_cursor
            if dram_cursor > start:
                start = dram_cursor
            # Earliest legal time of the leading command (same value as
            # flat.earliest; negative bounds can never exceed start).
            if not inline_earliest:
                earliest = flat_earliest(kinds[0], bank)
                if earliest > start:
                    start = earliest
            elif case == 0:  # RD/WR on the open row
                e = last_act_arr[bank] + tRCD
                v = flat.max_cas_all + tCCD_S
                if v > e:
                    e = v
                v = gmax_cas_arr[group_of[bank]] + tCCD_L
                if v > e:
                    e = v
                if not is_dram_write:
                    v = flat.max_write_end + tWTR
                    if v > e:
                        e = v
                if e > start:
                    start = e
            elif case == 2:  # PRE (row conflict)
                e = last_act_arr[bank] + tRAS
                v = last_read_arr[bank] + tRTP
                if v > e:
                    e = v
                v = last_write_end_arr[bank] + tWR
                if v > e:
                    e = v
                if e > start:
                    start = e
            else:  # ACT (closed bank)
                e = last_act_arr[bank] + tRC
                v = last_pre_arr[bank] + tRP
                if v > e:
                    e = v
                v = flat.max_act_all + tRRD_S
                if v > e:
                    e = v
                v = gmax_act_arr[group_of[bank]] + tRRD_L
                if v > e:
                    e = v
                acts = flat.recent_acts
                n_acts = len(acts)
                if n_acts >= 4:
                    v = acts[n_acts - 4] + tFAW
                    if v > e:
                        e = v
                v = flat.last_ref + tRFC
                if v > e:
                    e = v
                if e > start:
                    start = e
            if case:
                issue_plan(kinds, offsets, bank, row, dram.col, start, tck)
            else:
                issue_col(kinds[0], bank, dram.col, start)
            bender.programs_run += 1
            bender.total_interface_cycles += total_cycles
            dram_end = self.dram_cursor = start + measured
            tile_stats.dram_busy_ps += measured
            stats.batches_executed += 1
            release_ps = (dram_end + (lat_wr if is_dram_write else lat_rd)
                          + resp_bus)
            request.release = -(-release_ps // proc_period)
            request.service_ps = dram_end - sched_start
            if is_dram_write:
                stats.serviced_writes += 1
            elif request.is_prefetch:
                stats.serviced_prefetches += 1
            else:
                stats.serviced_reads += 1
            # Mirror the reference path's discarded rdback/enqueue charges.
            api.charged_cycles = 0
            tile_stats.responses_sent += 1
            if pipelined:
                occupied = sched_start + occupancy
                if occupied > self.sched_cursor:
                    self.sched_cursor = occupied
            else:
                cursor = sched_start + sched_ps + post_flush_ps
                if dram_end > cursor:
                    cursor = dram_end
                self.sched_cursor = cursor

        return serve

    def _maybe_refresh_flat(
            self, refresh_sink: Callable[[int], None] | None) -> None:
        """:meth:`_maybe_refresh_batched` on flat state (no Command objects)."""
        if not self.config.controller.refresh_enabled:
            return
        if self._next_refresh_ps > self.sched_cursor:
            return
        api = self.api
        device = self.tile.device
        flat = device.flat
        bender = self.tile.engine
        issue = device.issue_fast
        total_cycles = self._ref_cycles
        measured = self._ref_measured
        while self._next_refresh_ps <= self.sched_cursor:
            api.charged_cycles = 0  # staging + accumulated charges discarded
            anchor = self.sched_cursor
            self._exec_anchor_ps = anchor
            start = anchor if anchor >= self.dram_cursor else self.dram_cursor
            earliest = flat.earliest(K_PREA, 0)
            if earliest > start:
                start = earliest
            issue(K_PREA, 0, 0, 0, start, True)
            issue(K_REF, 0, 0, 0, start + self._ref_offset_ps, False)
            bender.programs_run += 1
            bender.total_interface_cycles += total_cycles
            self.dram_cursor = start + measured
            self.tile.stats.dram_busy_ps += measured
            self.stats.batches_executed += 1
            api.charged_cycles = 0  # flush charges discarded
            self.stats.refreshes += 1
            self.tile.stats.refreshes_issued += 1
            if self._storm_factor > 1:
                self._refresh_index += 1
                if self._refresh_index % self._storm_factor:
                    self.stats.storm_refreshes += 1
            if refresh_sink is not None:
                refresh_sink(self._next_refresh_ps)
            self._next_refresh_ps += self._refresh_interval
            if not self._pipelined:
                if self.dram_cursor > self.sched_cursor:
                    self.sched_cursor = self.dram_cursor

    # -- refresh -----------------------------------------------------------------

    def _maybe_refresh(self) -> None:
        """Issue any refreshes whose deadline passed (tREFI cadence)."""
        if not self.config.controller.refresh_enabled:
            return
        while self._next_refresh_ps <= self.sched_cursor:
            self.api.stage_refresh()
            self.api.take_charges()
            self._exec_anchor_ps = max(self.sched_cursor, self._next_refresh_ps)
            self.api.flush_commands()
            self.api.take_charges()
            self.stats.refreshes += 1
            self.tile.stats.refreshes_issued += 1
            if self._storm_factor > 1:
                self._refresh_index += 1
                if self._refresh_index % self._storm_factor:
                    self.stats.storm_refreshes += 1
            self._next_refresh_ps += self._refresh_interval
            if not self._pipelined:
                self.sched_cursor = max(self.sched_cursor, self.dram_cursor)

    # -- technique episodes ---------------------------------------------------------

    def technique_episode(self, stage, issue_cycle: int,
                          respect_timing: bool = False) -> tuple[int, ExecResult]:
        """Run a technique operation (e.g. one RowClone) as an episode.

        ``stage`` is a callable that stages commands through the API.
        ``issue_cycle`` is the processor cycle at which the processor
        issued the technique request (memory-mapped register write).
        Returns (release processor cycle, Bender result).
        """
        self.counters.enter_critical()
        start = max(self.sched_cursor,
                    issue_cycle * self._proc_period + self._req_bus_ps)
        self.sched_cursor = start
        self._maybe_refresh()
        start = self.sched_cursor
        stage(self.api)
        sched_cycles = self.api.take_charges()
        self.stats.total_sched_cycles += sched_cycles
        sched_ps = sched_cycles * self._mc_period
        self.tile.stats.scheduling_ps += sched_ps
        self._exec_anchor_ps = start + sched_ps
        result = self.api.flush_commands(respect_timing=respect_timing)
        self.api.take_charges()
        release_ps = self.dram_cursor + self._resp_bus_ps
        release = -(-release_ps // self._proc_period)
        self.stats.technique_ops += 1
        self.tile.stats.technique_ops += 1
        if self._pipelined:
            self.sched_cursor = max(start + self._occupancy_ps, self.sched_cursor)
        else:
            self.sched_cursor = max(self.dram_cursor, start + sched_ps)
        self._sync_mc_counter()
        self.counters.exit_critical()
        return release, result

    # -- counters ---------------------------------------------------------------

    def _sync_mc_counter(self) -> None:
        point_ps = max(self.sched_cursor, self.dram_cursor)
        cycle = point_ps // self._proc_period
        if cycle > self.counters.memory_controller:
            self.counters.advance_memory_controller(cycle)
