"""System configurations and the presets used by the paper's evaluation.

A :class:`SystemConfig` fully describes one emulated system: processor
domain, memory-controller domain, cache hierarchy, DRAM timing/geometry,
bus latencies, and controller behaviour.  Four presets reproduce the
configurations of the paper:

``jetson_nano_time_scaling``
    EasyDRAM - Time Scaling: a BOOM core time-scaled to mirror the
    1.43 GHz Cortex A57 of the NVIDIA Jetson Nano, 32 KiB L1D, 512 KiB
    8-way L2, DDR4-1333 (Sections 6-8).
``pidram_no_time_scaling``
    EasyDRAM - No Time Scaling: the PiDRAM-like system (simple in-order
    50 MHz core, software memory controller fully exposed).
``validation_reference``
    Section 6's RTL reference: every component natively at 1 GHz with the
    memory controller in hardware (no time scaling needed).
``validation_time_scaled``
    Section 6's EasyDRAM under test: a 100 MHz FPGA processor time-scaled
    to 1 GHz; must match the reference within <0.1 % on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.schedulers import scheduler_names
from repro.core.timescale import ClockDomain
from repro.cpu.processor import ProcessorConfig
from repro.dram.address import Geometry
from repro.dram.cells import CellModelConfig
from repro.dram.timing import TimingParams, ddr4_1333, ns

#: Memory-system topology presets (channels x ranks x bank layout).
#: ``ddr4-*`` keep the paper's DDR4 bank layout (4 groups x 4 banks) and
#: scale channels/ranks; ``lpddr4-*`` model the groupless 8-bank LPDDR4
#: channel layout common on mobile SoCs.  Apply with :func:`topology`.
TOPOLOGIES: dict[str, dict] = {
    "ddr4-1ch": dict(channels=1, ranks=1),
    "ddr4-2ch": dict(channels=2, ranks=1),
    "ddr4-4ch": dict(channels=4, ranks=1),
    "ddr4-2ch-2rk": dict(channels=2, ranks=2),
    "ddr4-1ch-2rk": dict(channels=1, ranks=2),
    "lpddr4-4ch": dict(channels=4, ranks=1, bank_groups=1,
                       banks_per_group=8),
}


def topology(name: str, base: Geometry | None = None, **overrides) -> Geometry:
    """Build a :class:`Geometry` from a named topology preset.

    ``base`` supplies the non-topology dimensions (rows, columns, line
    size; defaults to the default :class:`Geometry`); ``overrides`` win
    over both.
    """
    try:
        fields = dict(TOPOLOGIES[name])
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise KeyError(
            f"unknown topology preset {name!r}; known: {known}") from None
    fields.update(overrides)
    return replace(base if base is not None else Geometry(), **fields)


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's parameters."""

    size_bytes: int
    assoc: int
    hit_latency: int
    line_bytes: int = 64


@dataclass(frozen=True)
class ControllerConfig:
    """Software-memory-controller behaviour and cost parameters.

    ``pipelined_occupancy_cycles`` models how the *emulated* controller
    overlaps successive requests: the Section 6 reference (an RTL
    implementation of the same scheduling logic) accepts a new request
    every few cycles even though each request's scheduling *latency* is
    the full software path.  "No Time Scaling" configurations set it to
    0, which serializes the full software cost between requests — the
    exact pathology Figure 2 illustrates.
    """

    #: Any name registered in :data:`repro.core.schedulers.SCHEDULERS`
    #: ("fr-fcfs", "fcfs", "atlas", "bliss", "batch").
    scheduler: str = "fr-fcfs"
    #: Anti-starvation guard: once the oldest request-table entry has
    #: been bypassed by this many newer arrivals it is served next
    #: regardless of row-buffer state.  ``None`` (the paper's
    #: single-core default) disables the guard; multi-core contention
    #: scenarios set it so one core's row-hit stream cannot starve
    #: another core's row-miss requests.  Threads to every scheduler
    #: (FCFS, starvation-free by construction, ignores it).
    scheduler_age_cap: int | None = None
    pipelined_occupancy_cycles: int = 4
    #: Request/response path between the memory bus and EasyTile buffers,
    #: in memory-controller cycles.
    request_bus_cycles: int = 4
    response_bus_cycles: int = 4
    refresh_enabled: bool = True

    def __post_init__(self) -> None:
        known = scheduler_names()
        if self.scheduler not in known:
            raise ValueError(f"unknown scheduler {self.scheduler!r}"
                             f" (known: {', '.join(known)})")


@dataclass(frozen=True)
class InterferenceConfig:
    """DRAM-layer interference knobs (all off by default).

    These model *memory-system pressure*, not data corruption: refresh
    storms steal command bandwidth on schedule, and the victim-row
    counters expose RowHammer-style neighbor-activation pressure per
    row — no bit flips are modeled.
    """

    #: Refresh-rate multiplier: the controller issues refreshes every
    #: ``tREFI / refresh_storm_factor``.  1 keeps the nominal JEDEC
    #: cadence (the paper's system, bit for bit); larger factors emulate
    #: a storm of extra refreshes that steal request bandwidth.
    refresh_storm_factor: int = 1
    #: When set, only this rank's retention bookkeeping is refreshed
    #: (the refresh command still occupies the shared channel for its
    #: full duration) — the other ranks' retention windows keep aging,
    #: observable under ``retention_modeling``.  ``None`` refreshes all
    #: ranks, the nominal behaviour.
    refresh_storm_rank: int | None = None
    #: Count ACTIVATE commands per (bank, row) so RowHammer-style
    #: victim-row pressure (activations of the two physical neighbors)
    #: becomes observable via ``DramDevice.hammer_report``.  Off by
    #: default: the counters live on the hot path.
    track_row_activations: bool = False

    def __post_init__(self) -> None:
        if self.refresh_storm_factor < 1:
            raise ValueError("refresh_storm_factor must be >= 1")
        if (self.refresh_storm_rank is not None
                and self.refresh_storm_rank < 0):
            raise ValueError("refresh_storm_rank must be >= 0 (or None)")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one emulated EasyDRAM system."""

    name: str
    processor_domain: ClockDomain
    controller_domain: ClockDomain
    #: DRAM Bender's FPGA clock; real durations are measured on this grid.
    bender_domain: ClockDomain
    processor: ProcessorConfig
    l1: CacheConfig
    l2: CacheConfig
    timing: TimingParams = field(default_factory=ddr4_1333)
    geometry: Geometry = field(default_factory=Geometry)
    cells: CellModelConfig = field(default_factory=CellModelConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    interference: InterferenceConfig = field(
        default_factory=InterferenceConfig)
    mapping_scheme: str = "row-bank-col-skew"

    @property
    def time_scaling_enabled(self) -> bool:
        return (self.processor_domain.scaling_active
                or self.controller_domain.scaling_active)

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Functional update helper for experiment sweeps."""
        return replace(self, **kwargs)

    def with_topology(self, name: str,
                      mapping_scheme: str | None = None,
                      **geometry_overrides) -> "SystemConfig":
        """Rebuild this config on a named memory-system topology.

        Multi-channel topologies default to the ``channel-line``
        interleave (maximum channel-level parallelism for streams)
        unless ``mapping_scheme`` says otherwise; single-channel
        topologies keep this config's scheme.
        """
        geometry = topology(name, base=self.geometry, **geometry_overrides)
        if mapping_scheme is None:
            mapping_scheme = ("channel-line" if geometry.channels > 1
                              else self.mapping_scheme)
        return replace(self, geometry=geometry, mapping_scheme=mapping_scheme)


def _bender_domain(fpga_hz: float = 333e6) -> ClockDomain:
    """DRAM Bender's sequencer clock (DDR4-1333 bus clock / 2)."""
    return ClockDomain("bender", fpga_freq_hz=fpga_hz, emulated_freq_hz=fpga_hz)


def jetson_nano_time_scaling(**overrides) -> SystemConfig:
    """EasyDRAM - Time Scaling, mirroring the Jetson Nano's Cortex A57."""
    cfg = SystemConfig(
        name="EasyDRAM-TimeScaling",
        processor_domain=ClockDomain("processor", 100e6, 1.43e9),
        controller_domain=ClockDomain("controller", 100e6, 1.0e9),
        bender_domain=_bender_domain(),
        processor=ProcessorConfig(
            name="A57-like", emulated_freq_hz=1.43e9, fpga_freq_hz=100e6,
            mlp=16, miss_window=96),
        l1=CacheConfig(size_bytes=32 * 1024, assoc=2, hit_latency=2),
        l2=CacheConfig(size_bytes=512 * 1024, assoc=8, hit_latency=12),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def cortex_a57_reference(**overrides) -> SystemConfig:
    """The real Jetson Nano board (Figure 8's 'Cortex A57' line).

    Same system as :func:`jetson_nano_time_scaling` but with a 2 MiB L2
    (the paper notes EasyDRAM's L2 is 512 KiB vs the board's 2 MiB) and
    native clocks (a real board needs no time scaling).
    """
    cfg = SystemConfig(
        name="Cortex-A57",
        processor_domain=ClockDomain("processor", 1.43e9, 1.43e9),
        controller_domain=ClockDomain("controller", 1.0e9, 1.0e9),
        bender_domain=_bender_domain(1.0e9),
        processor=ProcessorConfig(
            name="A57", emulated_freq_hz=1.43e9, fpga_freq_hz=1.43e9,
            mlp=16, miss_window=96),
        l1=CacheConfig(size_bytes=32 * 1024, assoc=2, hit_latency=2),
        l2=CacheConfig(size_bytes=2 * 1024 * 1024, assoc=16, hit_latency=14),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def pidram_no_time_scaling(**overrides) -> SystemConfig:
    """EasyDRAM - No Time Scaling: the PiDRAM-like evaluation system.

    A simple in-order core at 50 MHz; the software memory controller's
    full cost (at its 100 MHz FPGA clock) is exposed to the evaluation,
    and requests are fully serialized in the controller.
    """
    cfg = SystemConfig(
        name="EasyDRAM-NoTimeScaling",
        processor_domain=ClockDomain("processor", 50e6, 50e6),
        controller_domain=ClockDomain("controller", 100e6, 100e6),
        bender_domain=_bender_domain(),
        processor=ProcessorConfig(
            name="in-order-50MHz", emulated_freq_hz=50e6, fpga_freq_hz=50e6,
            mlp=1, miss_window=1),
        l1=CacheConfig(size_bytes=16 * 1024, assoc=2, hit_latency=1),
        l2=CacheConfig(size_bytes=512 * 1024, assoc=8, hit_latency=8),
        controller=ControllerConfig(pipelined_occupancy_cycles=0),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def validation_reference(**overrides) -> SystemConfig:
    """Section 6's RTL reference: everything natively at 1 GHz."""
    cfg = SystemConfig(
        name="Validation-Reference-1GHz",
        processor_domain=ClockDomain("processor", 1.0e9, 1.0e9),
        controller_domain=ClockDomain("controller", 1.0e9, 1.0e9),
        bender_domain=_bender_domain(1.0e9),
        processor=ProcessorConfig(
            name="ref-1GHz", emulated_freq_hz=1.0e9, fpga_freq_hz=1.0e9,
            mlp=4, miss_window=32),
        l1=CacheConfig(size_bytes=32 * 1024, assoc=4, hit_latency=2),
        l2=CacheConfig(size_bytes=512 * 1024, assoc=8, hit_latency=12),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def validation_time_scaled(**overrides) -> SystemConfig:
    """Section 6's device under test: 100 MHz FPGA core scaled to 1 GHz."""
    ref = validation_reference()
    cfg = ref.with_overrides(
        name="Validation-TimeScaled-100MHz-to-1GHz",
        processor_domain=ClockDomain("processor", 100e6, 1.0e9),
        controller_domain=ClockDomain("controller", 100e6, 1.0e9),
        # DRAM Bender measures elapsed time at the DDR4-1333 command
        # clock (666 MHz): the measurement grid is a property of the
        # DRAM interface, not of the emulated processor clock.
        bender_domain=_bender_domain(666e6),
        processor=ProcessorConfig(
            name="ts-100MHz-as-1GHz", emulated_freq_hz=1.0e9,
            fpga_freq_hz=100e6, mlp=4, miss_window=32),
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


PRESETS = {
    "jetson-nano-ts": jetson_nano_time_scaling,
    "cortex-a57": cortex_a57_reference,
    "pidram-no-ts": pidram_no_time_scaling,
    "validation-ref": validation_reference,
    "validation-ts": validation_time_scaled,
}


def preset(preset_name: str, **overrides) -> SystemConfig:
    """Look up a system preset by name (overrides apply on top)."""
    try:
        factory = PRESETS[preset_name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(
            f"unknown system preset {preset_name!r}; known: {known}") from None
    return factory(**overrides)
