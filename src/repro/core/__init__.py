"""EasyDRAM core: time scaling, EasyAPI, the SMC, and the system engine."""

from repro.core.channels import Channel, ChannelSet
from repro.core.config import (
    TOPOLOGIES,
    CacheConfig,
    ControllerConfig,
    SystemConfig,
    topology,
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
    preset,
    validation_reference,
    validation_time_scaled,
)
from repro.core.easyapi import CostModel, EasyAPI
from repro.core.engine import CycleEngine, EventEngine, make_engine
from repro.core.events import EngineStats, Event, EventKind, EventQueue
from repro.core.schedulers import FCFS, FRFCFS, Scheduler, TableEntry, make_scheduler
from repro.core.smc import SmcStats, SoftwareMemoryController
from repro.core.stats import Breakdown, RunResult
from repro.core.system import EasyDRAMSystem, EmulationDeadlock, Session
from repro.core.tile import EasyTile, TileStats
from repro.core.timescale import ClockDomain, TimeScalingCounters

__all__ = [
    "Breakdown",
    "CacheConfig",
    "Channel",
    "ChannelSet",
    "TOPOLOGIES",
    "ClockDomain",
    "ControllerConfig",
    "CostModel",
    "CycleEngine",
    "EasyAPI",
    "EasyDRAMSystem",
    "EasyTile",
    "EmulationDeadlock",
    "EngineStats",
    "Event",
    "EventEngine",
    "EventKind",
    "EventQueue",
    "FCFS",
    "FRFCFS",
    "RunResult",
    "Scheduler",
    "Session",
    "SmcStats",
    "SoftwareMemoryController",
    "SystemConfig",
    "TableEntry",
    "TileStats",
    "TimeScalingCounters",
    "cortex_a57_reference",
    "jetson_nano_time_scaling",
    "make_engine",
    "make_scheduler",
    "pidram_no_time_scaling",
    "preset",
    "topology",
    "validation_reference",
    "validation_time_scaled",
]
