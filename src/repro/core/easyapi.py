"""EasyAPI: the high-level library for software memory controllers.

This is the Python analogue of the paper's C++ EasyAPI (Table 2).  A
controller program stages DRAM commands (``ddr_activate`` /
``ddr_precharge`` / ``ddr_read`` / ...), flushes them to DRAM Bender
(``flush_commands``), reads data back (``rdback_cacheline``), and moves
requests/responses between the hardware buffers and its software request
table.

Every call charges *controller core cycles* through the cost model —
this is how the evaluation captures that a software memory controller
executes hundreds of instructions per memory request (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.engine import ExecResult
from repro.bender.program import BenderProgram
from repro.core.tile import EasyTile
from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.commands import Command, CommandKind
from repro.fastpath import fastpath_enabled


@dataclass(frozen=True)
class CostModel:
    """Controller-core cycle costs of EasyAPI operations.

    The defaults are calibrated so a conventional read-request service
    costs ~60-80 core cycles, matching the paper's description of a
    request taking "hundreds of instructions" end to end (including the
    polling loop and bookkeeping around the API calls).
    """

    poll: int = 2                 # req_empty() check
    receive_request: int = 12     # hardware FIFO -> scratchpad transfer
    enqueue_response: int = 12    # response finalize + buffer write
    address_map: int = 8          # physical -> DRAM translation
    table_insert: int = 6         # software request table insert
    command_insert: int = 3       # one DRAM command into the batch
    flush: int = 10               # kick off DRAM Bender
    per_instruction_transfer: int = 1   # command-buffer transfer per instr
    readback: int = 4             # read one line from the readback buffer
    critical_toggle: int = 4      # set_scheduling_state()
    rowclone_setup: int = 60      # compose + verify a RowClone sequence
    #: Weak-row Bloom filter lookup.  Only the non-overlapped cost is
    #: charged: the lookup runs while the precharge of the conflicting
    #: row is already in flight (a row hit never consults the filter).
    bloom_check: int = 2
    profile_op: int = 40          # one profiling-request iteration


class ProgramExecutor:
    """Interface the API uses to run a staged program.

    The software-memory-controller framework installs itself here so
    that ``flush_commands`` executes at the controller's current point
    on the emulated timeline (the API itself is timeline-agnostic).
    """

    def execute_staged(self, program: BenderProgram,
                       respect_timing: bool) -> ExecResult:
        raise NotImplementedError


class EasyAPI:
    """Hardware-abstraction + software library facade over the tile."""

    def __init__(self, tile: EasyTile, costs: CostModel | None = None) -> None:
        self.tile = tile
        self.costs = costs or CostModel()
        self.charged_cycles = 0
        self.program = BenderProgram(tile.config.timing)
        self.executor: ProgramExecutor | None = None
        self.last_exec: ExecResult | None = None
        self.critical = False
        # Conventional-sequence program pool (REPRO_FASTPATH): the
        # open-page read/write/refresh programs have a fixed shape per
        # row-buffer case, so the staged BenderProgram is built once and
        # re-patched with bank/row/column instead of reallocated.
        self._pool_enabled = fastpath_enabled()
        self._conv_pool: dict[object, tuple[BenderProgram, list[Command], int]] = {}
        self._lent: BenderProgram | None = None

    # -- cost accounting ----------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Charge controller core cycles (the SMC drains this)."""
        self.charged_cycles += cycles

    def take_charges(self) -> int:
        """Return and reset the accumulated cycle charges."""
        cycles = self.charged_cycles
        self.charged_cycles = 0
        return cycles

    # -- hardware abstraction library (Table 2, top half) ---------------------

    def set_scheduling_state(self, state: bool) -> None:
        """Set/clear the critical-mode register."""
        self.charge(self.costs.critical_toggle)
        self.critical = state

    def req_empty(self) -> bool:
        """Poll the hardware request FIFO."""
        self.charge(self.costs.poll)
        return not self.tile.has_requests

    def get_request(self) -> MemoryRequest:
        """Move one request from the hardware buffer to the scratchpad."""
        self.charge(self.costs.receive_request)
        return self.tile.pop_request()

    def get_addr_mapping(self, phys_addr: int) -> DramAddress:
        """Translate a physical address to <bank, row, column>."""
        self.charge(self.costs.address_map)
        return self.tile.mapper.to_dram(phys_addr)

    def reverse_addr_mapping(self, dram: DramAddress) -> int:
        """Translate a DRAM coordinate back to a physical address."""
        self.charge(self.costs.address_map)
        return self.tile.mapper.to_physical(dram)

    # -- DRAM command staging (Table 2, ddr_*) ---------------------------------

    def ddr_activate(self, bank: int, row: int) -> None:
        self.charge(self.costs.command_insert)
        self.program.activate(bank, row)

    def ddr_precharge(self, bank: int) -> None:
        self.charge(self.costs.command_insert)
        self.program.precharge(bank)

    def ddr_precharge_all(self) -> None:
        self.charge(self.costs.command_insert)
        self.program.precharge_all()

    def ddr_read(self, bank: int, col: int) -> None:
        self.charge(self.costs.command_insert)
        self.program.read(bank, col)

    def ddr_write(self, bank: int, col: int, data: bytes | None = None) -> None:
        self.charge(self.costs.command_insert)
        self.program.write(bank, col, data)

    def ddr_refresh(self) -> None:
        self.charge(self.costs.command_insert)
        self.program.refresh()

    def ddr_wait_ps(self, duration_ps: int) -> None:
        """Stage an exact inter-command delay (no core cost: it is data)."""
        self.program.wait_ps(duration_ps)

    def flush_commands(self, respect_timing: bool = True) -> ExecResult:
        """Execute the staged command batch on DRAM Bender.

        ``respect_timing=False`` skips the leading legality wait so DRAM
        techniques can issue deliberately violating sequences.
        """
        n = len(self.program)
        self.charge(self.costs.flush + self.costs.per_instruction_transfer * n)
        if self.executor is None:
            raise RuntimeError("EasyAPI has no program executor installed")
        program = self.program
        lent = self._lent
        self._lent = None
        program.finish()
        try:
            result = self.executor.execute_staged(program, respect_timing)
        finally:
            if lent is program:
                # Restore the pooled template: strip the END that
                # finish() appended so the next lease sees the bare
                # command sequence again.
                program.instructions.pop()
        self.last_exec = result
        self.program = BenderProgram(self.tile.config.timing)
        return result

    def rdback_cacheline(self) -> bytes:
        """Pop one line from the readback buffer."""
        self.charge(self.costs.readback)
        return self.tile.readback.pop_line()

    def rdback_cacheline_checked(self) -> tuple[bytes, bool]:
        """Pop one line plus its reliability flag (profiling uses this)."""
        self.charge(self.costs.readback)
        return self.tile.readback.pop()

    # -- software library (Table 2, bottom half) ---------------------------------

    def wait_after_command_ps(self, duration_ps: int) -> None:
        """Wait so the *next* command lands ``duration_ps`` after the last.

        A DDR command occupies one interface cycle, so the explicit WAIT
        is one cycle shorter; the next command then issues at exactly
        ``ceil(duration / tCK)`` interface cycles after its predecessor —
        the finest spacing the real sequencer can realize.
        """
        self.ddr_wait_ps(duration_ps - self.tile.config.timing.tCK)

    def read_sequence(self, dram: DramAddress) -> None:
        """Stage the command sequence that serves one read (open-page).

        Mirrors Listing 1's ``read_sequence``: precharge on conflict,
        activate on miss, then the column read.  The data-return time
        (tCL + tBL) is part of the *request latency* the controller adds
        when tagging the response, but it does not occupy the command
        bus — back-to-back column reads pipeline tCCD apart.
        """
        t = self.tile.config.timing
        state = self.tile.device.banks[dram.bank]
        if state.open_row != dram.row:
            if state.open_row is not None:
                self.ddr_precharge(dram.bank)
                self.wait_after_command_ps(t.tRP)
            self.ddr_activate(dram.bank, dram.row)
            self.wait_after_command_ps(t.tRCD)
        self.ddr_read(dram.bank, dram.col)

    def write_sequence(self, dram: DramAddress, data: bytes | None = None) -> None:
        """Stage the command sequence that serves one write (open-page)."""
        t = self.tile.config.timing
        state = self.tile.device.banks[dram.bank]
        if state.open_row != dram.row:
            if state.open_row is not None:
                self.ddr_precharge(dram.bank)
                self.wait_after_command_ps(t.tRP)
            self.ddr_activate(dram.bank, dram.row)
            self.wait_after_command_ps(t.tRCD)
        self.ddr_write(dram.bank, dram.col, data)

    def stage_conventional(self, dram: DramAddress, is_write: bool) -> None:
        """Stage a conventional open-page sequence via the program pool.

        Behaviorally identical to :meth:`read_sequence` /
        :meth:`write_sequence` (same staged instructions, same cycle
        charges): on a pool hit the memoized program's commands are
        patched with this request's bank/row/column and the program is
        *lent* as the staged batch — :meth:`flush_commands` returns it to
        the pool intact.  Falls back to the plain builders when pooling
        is disabled or a partially staged program exists.
        """
        if not self._pool_enabled or self.program.instructions:
            if is_write:
                self.write_sequence(dram)
            else:
                self.read_sequence(dram)
            return
        open_row = self.tile.device.banks[dram.bank].open_row
        if open_row == dram.row:
            case = 0
        elif open_row is None:
            case = 1
        else:
            case = 2
        key = (case, is_write)
        entry = self._conv_pool.get(key)
        if entry is None:
            if is_write:
                self.write_sequence(dram)
            else:
                self.read_sequence(dram)
            program = self.program
            commands = [ins.command for ins in program.instructions
                        if ins.command is not None]
            self._conv_pool[key] = (
                program, commands,
                len(commands) * self.costs.command_insert)
            self._lent = program
            return
        program, commands, charge = entry
        bank, row, col = dram.bank, dram.row, dram.col
        for command in commands:
            command.bank = bank
            command.row = row
            command.col = col
        self.charge(charge)
        self.program = program
        self._lent = program

    def stage_refresh(self) -> None:
        """Stage the refresh burst via the program pool (see above)."""
        if not self._pool_enabled or self.program.instructions:
            self.refresh_sequence()
            return
        entry = self._conv_pool.get("refresh")
        if entry is None:
            self.refresh_sequence()
            program = self.program
            self._conv_pool["refresh"] = (
                program, [], 2 * self.costs.command_insert)
            self._lent = program
            return
        program, _commands, charge = entry
        self.charge(charge)
        self.program = program
        self._lent = program

    def data_latency_ps(self, is_write: bool) -> int:
        """Data-return time of a column access (added to the release tag)."""
        t = self.tile.config.timing
        if is_write:
            return t.tCWL + t.tBL
        return t.tCL + t.tBL

    def refresh_sequence(self) -> None:
        """Stage a precharge-all + refresh burst."""
        t = self.tile.config.timing
        self.ddr_precharge_all()
        self.ddr_wait_ps(t.tRP)
        self.ddr_refresh()
        self.ddr_wait_ps(t.tRFC)

    def rowclone(self, bank: int, src_row: int, dst_row: int) -> None:
        """Stage a Fast Parallel Mode RowClone sequence (Section 7).

        ACT(src) -> premature PRE -> immediate ACT(dst): the interrupted
        precharge leaves the source row's data on the bitlines and the
        second activation latches it into the destination row.  The
        sequence deliberately violates tRAS and tRP.
        """
        t = self.tile.config.timing
        self.charge(self.costs.rowclone_setup)
        self.program.activate(bank, src_row)
        self.program.wait_cycles(2)           # well short of tRAS
        self.program.precharge(bank)
        # No wait: the next ACT interrupts the precharge (violates tRP).
        self.program.activate(bank, dst_row)
        self.program.wait_ps(t.tRAS)          # let the copy settle
        self.program.precharge(bank)
        self.program.wait_ps(t.tRP)

    def reduced_trcd_read(self, dram: DramAddress, trcd_ps: int) -> None:
        """Stage an activate + read using a (possibly reduced) tRCD."""
        t = self.tile.config.timing
        state = self.tile.device.banks[dram.bank]
        if state.open_row is not None:
            self.ddr_precharge(dram.bank)
            self.wait_after_command_ps(t.tRP)
        self.ddr_activate(dram.bank, dram.row)
        self.wait_after_command_ps(trcd_ps)
        self.ddr_read(dram.bank, dram.col)
        self.ddr_wait_ps(t.tCL + t.tBL)
