"""Multi-core workload mixes: the shared-memory scenario engine.

The paper's evaluation drives every artifact from a single in-order
core, so the memory system is never contended.  This module opens the
multi-core axis: a :class:`WorkloadMix` names one workload per core
(``"stream+pointer_chase"``, homogeneous ``"gemm*4"``), each core gets a
disjoint slice of the physical address space (private caches, no
coherence traffic to model), and :func:`run_mix` executes the mix on one
shared memory system — plus each workload *solo* on an identical
system, which is the baseline the per-core slowdown and the max/min
fairness metrics are defined against:

    slowdown_i  = cycles_i(mix) / cycles_i(solo)
    unfairness  = max_i slowdown_i / min_i slowdown_i

Workloads are block-native (:class:`~repro.cpu.blocks.BlockTrace`), and
because a mix run needs every trace at least twice (solo + shared), the
runner materializes each workload's blocks once and replays them
(:class:`~repro.cpu.blocks.MaterializedBlocks`; disable with
``REPRO_MC_MATERIALIZE=0``).  PolyBench kernels participate by name —
their access streams are rebased into the issuing core's region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.config import SystemConfig
from repro.core.stats import RunResult, fairness_of
from repro.core.system import EasyDRAMSystem
from repro.cpu.blocks import BlockTrace, MaterializedBlocks, blockify
from repro.cpu.memtrace import Access
from repro.fastpath import mix_materialize_enabled
from repro.workloads import lmbench, microbench, polybench

__all__ = ["CORE_REGION_BYTES", "MixRun", "WorkloadMix", "mix_names",
           "run_mix"]

#: Disjoint physical-address slice owned by each core.  The default
#: geometry holds 512 MiB per channel, so even an 8-core mix stays well
#: inside a single channel's decode range.
CORE_REGION_BYTES = 8 * 1024 * 1024

#: A named workload: ``factory(base_addr, scale) -> BlockTrace``.
#: ``scale`` multiplies the CI-scale footprint/access count (paper-scale
#: sweeps pass a larger value); the trace must stay inside
#: ``[base_addr, base_addr + CORE_REGION_BYTES)``.
Factory = Callable[[int, int], BlockTrace]

WORKLOADS: dict[str, Factory] = {}

#: CI-scale sizing shared by the built-in workloads.
_STREAM_BYTES = 256 * 1024          # copy: 2 x 256 KiB footprint
_CHASE_WS_BYTES = 128 * 1024        # pointer chase working set
_CHASE_ACCESSES = 6_000


def _workload(name: str):
    """Register a named workload factory."""

    def wrap(fn: Factory) -> Factory:
        WORKLOADS[name] = fn
        return fn

    return wrap


@_workload("stream")
def _stream(base: int, scale: int) -> BlockTrace:
    """Bandwidth hog: streaming copy (load + store per line, row hits)."""
    size = _STREAM_BYTES * scale
    return microbench.cpu_copy_blocks(base, base + size, size)


@_workload("init")
def _init(base: int, scale: int) -> BlockTrace:
    """Store stream: fill a region line by line."""
    return microbench.cpu_init_blocks(base, 2 * _STREAM_BYTES * scale)


@_workload("touch")
def _touch(base: int, scale: int) -> BlockTrace:
    """Read stream: touch every line of a region once."""
    return microbench.touch_blocks(base, 2 * _STREAM_BYTES * scale)


@_workload("pointer_chase")
def _pointer_chase(base: int, scale: int) -> BlockTrace:
    """Latency victim: dependent loads, no memory-level parallelism."""
    return lmbench.pointer_chase_blocks(
        _CHASE_WS_BYTES, _CHASE_ACCESSES * scale, base_addr=base)


def _rebase(trace: Iterator[Access], delta: int) -> Iterator[Access]:
    """Shift every access of a stream into a core's region."""
    for access in trace:
        yield Access(access[0] + delta, access[1], access[2])


def _polybench_factory(kernel: str) -> Factory:
    """A PolyBench kernel as a mix workload (rebased per core).

    The kernel generators lay arrays out from a fixed bump-allocator
    base, so the stream is shifted by the core's region base; footprints
    (tens of KiB at the mix's "small" dataset) sit far below the region
    size.
    """

    def make(base: int, scale: int) -> BlockTrace:
        size = "small" if scale > 1 else "mini"
        return blockify(_rebase(polybench.trace(kernel, size), base))

    return make


def mix_names() -> list[str]:
    """Every workload name a mix may reference (built-ins + PolyBench)."""
    return sorted(WORKLOADS) + polybench.names()


def lookup(name: str) -> Factory:
    """Resolve a workload name to its factory."""
    try:
        return WORKLOADS[name]
    except KeyError:
        pass
    if name in polybench.KERNELS:
        return _polybench_factory(name)
    known = ", ".join(mix_names())
    raise ValueError(f"unknown mix workload {name!r}; known: {known}")


@dataclass(frozen=True)
class WorkloadMix:
    """One named workload per core."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("a workload mix needs at least one core")
        for name in self.names:
            lookup(name)  # fail fast on typos

    @classmethod
    def parse(cls, spec: str, cores: int | None = None) -> "WorkloadMix":
        """Build a mix from a spec string.

        ``"stream+pointer_chase"`` pairs two cores; ``"gemm*4"`` is a
        homogeneous quad; the forms compose (``"stream*2+gemm"``).
        With ``cores`` set, the parsed list is cycled to that core
        count — ``("stream", "pointer_chase")`` at 4 cores alternates
        the two workloads.
        """
        names: list[str] = []
        for part in spec.split("+"):
            part = part.strip()
            if not part:
                raise ValueError(f"empty workload in mix spec {spec!r}")
            name, _, count = part.partition("*")
            name = name.strip()
            repeat = int(count) if count else 1
            if repeat < 1:
                raise ValueError(f"bad repeat in mix spec part {part!r}")
            names.extend([name] * repeat)
        if cores is not None:
            if cores < 1:
                raise ValueError("cores must be >= 1")
            names = [names[i % len(names)] for i in range(cores)]
        return cls(tuple(names))

    @property
    def cores(self) -> int:
        return len(self.names)

    def label(self) -> str:
        return "+".join(self.names)

    def region_base(self, core: int) -> int:
        """Base physical address of one core's private region."""
        return core * CORE_REGION_BYTES

    def build(self, core: int, scale: int = 1) -> BlockTrace:
        """Instantiate core ``core``'s trace inside its region.

        The stream is bounds-checked block by block: a workload whose
        ``scale`` pushes it past ``CORE_REGION_BYTES`` would silently
        alias another core's "disjoint" footprint and invalidate every
        slowdown/fairness number, so escaping the region raises instead.
        """
        name = self.names[core]
        base = self.region_base(core)
        trace = lookup(name)(base, scale)

        def bounded() -> Iterator:
            hi = base + CORE_REGION_BYTES
            for block in trace:
                addr = block.addr
                if addr and not (base <= min(addr) and max(addr) < hi):
                    raise ValueError(
                        f"workload {name!r} on core {core} escaped its"
                        f" region [{base:#x}, {hi:#x}) — reduce scale or"
                        f" grow CORE_REGION_BYTES")
                yield block

        return BlockTrace(bounded())


@dataclass
class MixRun:
    """Everything one mix execution produced.

    ``result`` is the contended run's :class:`RunResult` (its
    ``per_core`` slices carry the same slowdowns when the mix has more
    than one core); the flat lists below also cover the degenerate
    1-core mix, whose solo baseline is the run itself.
    """

    mix: WorkloadMix
    result: RunResult
    core_cycles: list[int]
    solo_cycles: list[int] = field(default_factory=list)

    @property
    def slowdowns(self) -> list[float]:
        if not self.solo_cycles:
            return []
        return [shared / solo for shared, solo
                in zip(self.core_cycles, self.solo_cycles)]

    @property
    def avg_slowdown(self) -> float:
        s = self.slowdowns
        return sum(s) / len(s) if s else 0.0

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns, default=0.0)

    @property
    def min_slowdown(self) -> float:
        return min(self.slowdowns, default=0.0)

    @property
    def unfairness(self) -> float:
        """Max/min slowdown (1.0 = perfectly fair)."""
        return fairness_of(self.slowdowns)


def run_mix(config: SystemConfig, mix: WorkloadMix, engine: str | None = None,
            scale: int = 1, solo: bool = True) -> MixRun:
    """Execute a workload mix under contention (plus its solo baselines).

    Builds one fresh :class:`EasyDRAMSystem` per run — each solo
    baseline and the shared run — so every run starts from identical
    cold state.  The shared run adds one session core per mix entry and
    drives them through the engine's round-robin arbitration
    (:meth:`Session.run_cores`).
    """
    traces: list[Callable[[], BlockTrace]] = []
    if mix_materialize_enabled():
        for core in range(mix.cores):
            blocks = MaterializedBlocks(mix.build(core, scale))
            traces.append(blocks.trace)
    else:
        traces = [
            (lambda core=core: mix.build(core, scale))
            for core in range(mix.cores)
        ]

    solo_cycles: list[int] = []
    if solo:
        for core in range(mix.cores):
            system = EasyDRAMSystem(config, engine=engine)
            session = system.session(f"{mix.names[core]}-solo", engine=engine)
            session.run_cores([traces[core]()])
            solo_cycles.append(session.processor.cycles)

    system = EasyDRAMSystem(config, engine=engine)
    session = system.session(mix.label(), engine=engine)
    session.cores[0].workload_name = mix.names[0]
    for core in range(1, mix.cores):
        session.add_core(mix.names[core])
    if solo and mix.cores > 1:
        session.solo_cycles = dict(enumerate(solo_cycles))
    session.run_cores([make() for make in traces])
    core_cycles = [c.processor.cycles for c in session.cores]
    return MixRun(mix=mix, result=session.finish(),
                  core_cycles=core_cycles, solo_cycles=solo_cycles)
