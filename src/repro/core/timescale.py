"""Time scaling: emulation domains and counters (Section 4.3).

Time scaling lets each hardware component be *emulated* at a different
clock frequency than its FPGA clock.  A :class:`ClockDomain` carries the
two frequencies; durations measured in domain cycles convert to emulated
time at the emulated frequency, and durations measured in real time
(DRAM operates in real time on the FPGA) are first quantized to the
domain's FPGA clock grid — the measurement granularity of the real
platform and the source of the <0.1 % validation error of Section 6.

The :class:`TimeScalingCounters` object mirrors Figure 5: a processor
cycle counter, a memory-controller cycle counter, and a global (FPGA)
cycle counter, plus the critical-mode flag that locks the processor
counter while the software memory controller works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import PS_PER_S, period_ps


@dataclass(frozen=True)
class ClockDomain:
    """One emulation domain: an FPGA clock and the clock it emulates.

    ``fpga_freq_hz == emulated_freq_hz`` disables time scaling for the
    domain (the "No Time Scaling" configurations).
    """

    name: str
    fpga_freq_hz: float
    emulated_freq_hz: float

    def __post_init__(self) -> None:
        if self.fpga_freq_hz <= 0 or self.emulated_freq_hz <= 0:
            raise ValueError(f"domain {self.name}: frequencies must be positive")

    @property
    def scaling_active(self) -> bool:
        return self.fpga_freq_hz != self.emulated_freq_hz

    @property
    def scale_factor(self) -> float:
        """How much faster the emulated clock is than the FPGA clock."""
        return self.emulated_freq_hz / self.fpga_freq_hz

    @property
    def emulated_period_ps(self) -> int:
        return period_ps(self.emulated_freq_hz)

    @property
    def fpga_period_ps(self) -> int:
        return period_ps(self.fpga_freq_hz)

    def cycles_to_emulated_ps(self, cycles: int) -> int:
        """Domain cycles -> emulated picoseconds.

        This implements the paper's conversion rule: work that takes N
        cycles on the (slow) FPGA core represents N cycles of the modeled
        component, which take ``N / emulated_freq`` seconds in the modeled
        system.
        """
        return cycles * self.emulated_period_ps

    def measure_ps(self, duration_ps: int) -> int:
        """Quantize a real duration to the domain's FPGA clock grid.

        Hardware can only *measure* elapsed time by counting its own clock
        edges, so a DRAM Bender execution of ``duration_ps`` is reported
        as a whole number of FPGA cycles (rounded up).
        """
        if duration_ps <= 0:
            return 0
        period = self.fpga_period_ps
        return -(-duration_ps // period) * period

    def ps_to_emulated_cycles(self, duration_ps: int) -> int:
        """Emulated picoseconds -> whole emulated cycles (rounded up)."""
        if duration_ps <= 0:
            return 0
        return -(-duration_ps // self.emulated_period_ps)

    def emulated_cycles_for_rate(self, duration_ps: int) -> float:
        """Exact (fractional) emulated cycles covered by ``duration_ps``."""
        return duration_ps * self.emulated_freq_hz / PS_PER_S


@dataclass
class TimeScalingCounters:
    """The three counters of Figure 5 plus critical-mode state.

    ``processor`` and ``memory_controller`` count *emulated processor
    cycles* so they are directly comparable (the response-consumption
    rule compares them).  ``global_fpga`` estimates FPGA wall-clock
    cycles actually spent, which the platform would use as its reference
    timer; we also use it to estimate emulation speed.
    """

    processor: int = 0
    memory_controller: int = 0
    global_fpga: int = 0
    critical_mode: bool = False
    #: Number of critical-mode episodes (for Figure 2's breakdown).
    critical_entries: int = 0
    #: Emulated cycles the processor counter jumped over when critical
    #: mode ended with the controller ahead (the catch-up rule below).
    #: Purely diagnostic — it measures how much emulated time passes
    #: without any per-cycle host work, which is exactly what the
    #: event-driven engine exploits.
    catch_up_cycles: int = 0
    #: History of (processor, memory_controller) snapshots for invariants.
    _locked_processor_at: int = field(default=0, repr=False)

    def enter_critical(self) -> None:
        """SMC detected a request: lock the processor counter (Fig 5 (c))."""
        if self.critical_mode:
            return
        self.critical_mode = True
        self.critical_entries += 1
        self._locked_processor_at = self.processor

    def exit_critical(self) -> None:
        """SMC served everything: processors resume (Fig 5 end)."""
        if not self.critical_mode:
            return
        self.critical_mode = False
        # When critical mode ends the processor counter catches up to the
        # memory-controller counter (the time the SMC consumed has passed
        # for the whole system).
        if self.memory_controller > self.processor:
            self.catch_up_cycles += self.memory_controller - self.processor
            self.processor = self.memory_controller

    def advance_processor(self, to_cycle: int) -> None:
        """Processor emulation progressed to ``to_cycle``.

        The counter is monotonic: after critical mode it may already sit
        ahead of the core's own cycle count (the catch-up rule), in which
        case the core's progress is absorbed without moving it back.
        """
        if to_cycle > self.processor:
            self.processor = to_cycle

    def advance_memory_controller(self, to_cycle: int) -> None:
        """SMC finished work up to ``to_cycle`` (Fig 5 steps 5 and 11)."""
        if to_cycle < self.memory_controller:
            raise ValueError(
                f"memory-controller counter cannot move backwards"
                f" ({self.memory_controller} -> {to_cycle})")
        self.memory_controller = to_cycle

    def advance_global(self, fpga_cycles: int) -> None:
        if fpga_cycles < 0:
            raise ValueError("global counter increments must be non-negative")
        self.global_fpga += fpga_cycles
