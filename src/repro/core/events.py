"""Event scheduling primitives for the event-driven emulation engine.

The event-driven core (:mod:`repro.core.engine`) never ticks the host
through emulated cycles one by one: the processor bursts directly to its
next clock gate, the software memory controller jumps its cursors from
request to request, and refresh deadlines that land inside a skipped
interval are issued at their exact emulated times during the next
critical-mode episode.  This module provides the bookkeeping that makes
those skips explicit:

* :class:`EventQueue` — a stable min-heap of :class:`Event` records on
  the emulated timeline.  Events with equal timestamps pop in insertion
  order (back-to-back release cycles are common at coarse processor
  clocks, e.g. the 50 MHz "No Time Scaling" system, and their service
  order must be deterministic).
* :class:`EventKind` — the event vocabulary of Figures 5 and 6: the
  processor clock-gating on an unserviced LLC miss (``GATE``), a
  response becoming consumable at its release cycle (``RELEASE``), and a
  tREFI refresh deadline (``REFRESH``).
* :class:`EngineStats` — per-run counts the speed benchmark and the
  Figure 14 engine comparison report.

The queue is deliberately tiny and allocation-light: the event-driven
engine's host-time win comes from *not* doing per-cycle work, so its own
bookkeeping must stay off the critical path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum


class EventKind(IntEnum):
    """What kind of emulation event a queue entry describes."""

    #: The processor clock-gated on an unserviced LLC miss (Fig 5, (c)).
    GATE = 0
    #: A response becomes consumable at its release cycle (Fig 5, (10)).
    RELEASE = 1
    #: A tREFI refresh deadline was reached (serviced in critical mode).
    REFRESH = 2


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence on the emulated timeline.

    ``time`` is always in emulated processor cycles — the engine drains
    the queue against the processor's cycle counter, so ``REFRESH``
    deadlines (which natively live on the controller's picosecond axis)
    are converted to cycles when pushed.  ``seq`` is the insertion
    ticket that keeps equal-time events FIFO-stable.
    """

    time: int
    seq: int
    kind: EventKind
    payload: int = 0


class EventQueue:
    """Stable min-heap of :class:`Event` records.

    Ordering is ``(time, seq)`` so two events at the same emulated time
    — e.g. back-to-back release cycles produced by one critical-mode
    batch — pop in the order they were scheduled.
    """

    def __init__(self) -> None:
        # Entries are plain (time, seq, kind, payload) tuples; Event
        # records are materialized on the way out.  Pushes sit on the
        # engine's hot path, pops happen in bulk after a skip.
        self._heap: list[tuple[int, int, EventKind, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, kind: EventKind, payload: int = 0) -> None:
        """Schedule an event."""
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def peek(self) -> Event | None:
        """The next event to fire, or None when the queue is empty."""
        return Event(*self._heap[0]) if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next event (min time, then FIFO)."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return Event(*heapq.heappop(self._heap))

    def pop_until(self, time: int) -> list[Event]:
        """Drain every event scheduled at or before ``time``.

        This is the skip-ahead primitive: after the processor jumps to a
        gate (or a release cycle), everything the jump passed over is
        collected here so the engine can account for it.
        """
        fired: list[Event] = []
        heap = self._heap
        while heap and heap[0][0] <= time:
            fired.append(Event(*heapq.heappop(heap)))
        return fired

    def drain_until(self, time: int) -> int:
        """Like :meth:`pop_until` but only counts the drained events."""
        n = 0
        heap = self._heap
        while heap and heap[0][0] <= time:
            heapq.heappop(heap)
            n += 1
        return n

    def clear(self) -> None:
        """Drop all scheduled events (sequence numbers keep counting)."""
        self._heap.clear()


@dataclass
class EngineStats:
    """What an emulation engine did with the host time it was given."""

    #: Clock-gating episodes (processor blocked on an unserviced miss).
    gates: int = 0
    #: Responses tagged with a release cycle.
    releases: int = 0
    #: Refresh deadlines serviced, including any that landed inside a
    #: skipped interval and were issued during the next episode.
    refreshes: int = 0
    #: Service episodes that took the batched bank-parallel path.
    batched_episodes: int = 0
    #: Service episodes that fell back to the reference path (technique
    #: hooks installed, or hardware FIFO state the fast path cannot see).
    fallback_episodes: int = 0
    #: Events (releases, refresh deadlines) the processor's jump passed
    #: over without dedicated host work (drained after each gate by
    #: :meth:`EventQueue.drain_until`).
    events_skipped: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for reports and benchmark logs."""
        return {
            "gates": self.gates,
            "releases": self.releases,
            "refreshes": self.refreshes,
            "batched_episodes": self.batched_episodes,
            "fallback_episodes": self.fallback_episodes,
            "events_skipped": self.events_skipped,
        }
