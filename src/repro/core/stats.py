"""Run results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.cache import CacheStats
from repro.dram.timing import PS_PER_S


@dataclass
class Breakdown:
    """Where a run's emulated time went (Figure 2's categories)."""

    processing_ps: int = 0    # compute + cache-hit time on the processor
    scheduling_ps: int = 0    # software-memory-controller logic
    main_memory_ps: int = 0   # DRAM Bender execution
    stall_ps: int = 0         # processor clock-gated beyond overlap

    @property
    def total_ps(self) -> int:
        return self.processing_ps + self.stall_ps

    def as_fractions(self) -> dict[str, float]:
        total = max(1, self.total_ps)
        return {
            "processing": self.processing_ps / total,
            "scheduling": min(self.scheduling_ps, self.stall_ps) / total,
            "main_memory": min(self.main_memory_ps, self.stall_ps) / total,
            "stall": self.stall_ps / total,
        }


@dataclass
class CoreResult:
    """One core's slice of a (possibly multi-core) run.

    ``slowdown`` is the contention metric of the multi-core literature:
    this core's completion cycles under the shared memory system divided
    by its cycles running the same workload alone on an identical
    system.  It is 0.0 (unknown) unless the session was given the solo
    reference cycles (see ``Session.solo_cycles``).
    """

    core: int
    workload_name: str
    cycles: int
    accesses: int = 0
    loads: int = 0
    stores: int = 0
    stall_cycles: int = 0
    llc_miss_requests: int = 0
    writeback_requests: int = 0
    avg_request_latency_cycles: float = 0.0
    #: Controller-side attribution (what the shared SMC did for this
    #: core): serviced requests and row-buffer outcomes.
    serviced_reads: int = 0
    serviced_writes: int = 0
    #: Prefetch fills serviced for this core — counted apart from
    #: ``serviced_reads`` (and from the row-outcome counters) so demand
    #: attribution is prefetch-blind.
    serviced_prefetches: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    #: Cycles(shared) / cycles(solo); 0.0 when no solo reference known.
    slowdown: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0


class CoreServiceTracker:
    """Controller-side per-core counters for multi-core sessions.

    One instance is shared by every channel's controller; ``note`` is
    called once per serviced request (after row-buffer classification,
    before the command issues), so single-core systems — which never
    install a tracker — pay nothing on the hot path.
    """

    __slots__ = ("reads", "writes", "prefetches", "row_hits", "row_misses",
                 "row_conflicts")

    def __init__(self, cores: int) -> None:
        self.reads = [0] * cores
        self.writes = [0] * cores
        self.prefetches = [0] * cores
        self.row_hits = [0] * cores
        self.row_misses = [0] * cores
        self.row_conflicts = [0] * cores

    def grow(self, cores: int) -> None:
        """Widen the counter arrays to ``cores`` entries."""
        for name in self.__slots__:
            arr = getattr(self, name)
            if len(arr) < cores:
                arr.extend([0] * (cores - len(arr)))

    def note(self, core: int, case: int, is_write: bool) -> None:
        """Record one serviced request (``case``: 0 hit/1 miss/2 conflict)."""
        if is_write:
            self.writes[core] += 1
        else:
            self.reads[core] += 1
        if case == 0:
            self.row_hits[core] += 1
        elif case == 1:
            self.row_misses[core] += 1
        else:
            self.row_conflicts[core] += 1

    def note_prefetch(self, core: int) -> None:
        """Record one serviced prefetch (excluded from demand counters)."""
        self.prefetches[core] += 1


def fairness_of(slowdowns: list[float]) -> float:
    """Max/min slowdown (>= 1.0; 1.0 is perfectly fair, higher is worse).

    The standard unfairness metric of the memory-scheduling literature:
    the most-slowed core's slowdown over the least-slowed core's.
    Returns 0.0 when no slowdowns are known.
    """
    known = [s for s in slowdowns if s > 0.0]
    if not known:
        return 0.0
    return max(known) / min(known)


@dataclass
class RunResult:
    """Everything a finished emulation reports."""

    config_name: str
    workload_name: str
    cycles: int                      # emulated processor cycles
    emulated_ps: int                 # emulated wall time
    accesses: int
    loads: int
    stores: int
    stall_cycles: int
    llc_miss_requests: int
    writeback_requests: int
    avg_request_latency_cycles: float
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    technique_ops: int = 0
    dram_commands: int = 0
    breakdown: Breakdown = field(default_factory=Breakdown)
    wall_seconds: float = 0.0
    estimated_fpga_seconds: float = 0.0
    #: Requests serviced by each channel's controller, channel-major
    #: (``[total]`` on the paper's single-channel topology).
    requests_per_channel: list[int] = field(default_factory=list)
    #: Per-core slices of a multi-core run (empty on the paper's
    #: single-core sessions, so every existing artifact is untouched).
    per_core: list[CoreResult] = field(default_factory=list)

    @property
    def slowdowns(self) -> list[float]:
        """Per-core slowdowns vs solo runs (empty unless multi-core)."""
        return [c.slowdown for c in self.per_core]

    @property
    def unfairness(self) -> float:
        """Max/min slowdown across cores (see :func:`fairness_of`)."""
        return fairness_of(self.slowdowns)

    @property
    def emulated_seconds(self) -> float:
        return self.emulated_ps / PS_PER_S

    @property
    def sim_speed_hz(self) -> float:
        """Simulation speed: emulated processor cycles per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def mpk_accesses(self) -> float:
        """LLC misses per kilo memory accesses (memory-intensity proxy)."""
        if self.accesses == 0:
            return 0.0
        return 1000.0 * self.llc_miss_requests / self.accesses

    @property
    def cycles_per_access(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.cycles / self.accesses

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if self.emulated_ps == 0:
            return 0.0
        return baseline.emulated_ps / self.emulated_ps

    def summary(self) -> str:
        return (
            f"{self.config_name}/{self.workload_name}:"
            f" {self.cycles} cycles ({self.emulated_seconds * 1e3:.3f} ms),"
            f" {self.accesses} accesses, {self.llc_miss_requests} LLC misses,"
            f" avg mem latency {self.avg_request_latency_cycles:.1f} cyc")
