"""Run results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.cache import CacheStats
from repro.dram.timing import PS_PER_S


@dataclass
class Breakdown:
    """Where a run's emulated time went (Figure 2's categories)."""

    processing_ps: int = 0    # compute + cache-hit time on the processor
    scheduling_ps: int = 0    # software-memory-controller logic
    main_memory_ps: int = 0   # DRAM Bender execution
    stall_ps: int = 0         # processor clock-gated beyond overlap

    @property
    def total_ps(self) -> int:
        return self.processing_ps + self.stall_ps

    def as_fractions(self) -> dict[str, float]:
        total = max(1, self.total_ps)
        return {
            "processing": self.processing_ps / total,
            "scheduling": min(self.scheduling_ps, self.stall_ps) / total,
            "main_memory": min(self.main_memory_ps, self.stall_ps) / total,
            "stall": self.stall_ps / total,
        }


@dataclass
class RunResult:
    """Everything a finished emulation reports."""

    config_name: str
    workload_name: str
    cycles: int                      # emulated processor cycles
    emulated_ps: int                 # emulated wall time
    accesses: int
    loads: int
    stores: int
    stall_cycles: int
    llc_miss_requests: int
    writeback_requests: int
    avg_request_latency_cycles: float
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refreshes: int = 0
    technique_ops: int = 0
    dram_commands: int = 0
    breakdown: Breakdown = field(default_factory=Breakdown)
    wall_seconds: float = 0.0
    estimated_fpga_seconds: float = 0.0
    #: Requests serviced by each channel's controller, channel-major
    #: (``[total]`` on the paper's single-channel topology).
    requests_per_channel: list[int] = field(default_factory=list)

    @property
    def emulated_seconds(self) -> float:
        return self.emulated_ps / PS_PER_S

    @property
    def sim_speed_hz(self) -> float:
        """Simulation speed: emulated processor cycles per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def mpk_accesses(self) -> float:
        """LLC misses per kilo memory accesses (memory-intensity proxy)."""
        if self.accesses == 0:
            return 0.0
        return 1000.0 * self.llc_miss_requests / self.accesses

    @property
    def cycles_per_access(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.cycles / self.accesses

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if self.emulated_ps == 0:
            return 0.0
        return baseline.emulated_ps / self.emulated_ps

    def summary(self) -> str:
        return (
            f"{self.config_name}/{self.workload_name}:"
            f" {self.cycles} cycles ({self.emulated_seconds * 1e3:.3f} ms),"
            f" {self.accesses} accesses, {self.llc_miss_requests} LLC misses,"
            f" avg mem latency {self.avg_request_latency_cycles:.1f} cyc")
