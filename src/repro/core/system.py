"""EasyDRAMSystem: the end-to-end emulation engine.

Wires the processor model, the EasyTile (buffers + Bender + DRAM), the
software memory controller, and the time-scaling counters into the
execution flow of Figures 5 and 6:

1. the processor executes until it is blocked on an unserviced
   last-level-cache miss (clock gating);
2. the software memory controller enters critical mode and services
   every pending request, tagging each response with the processor cycle
   at which it may be consumed;
3. the processor resumes, consuming responses at their release cycles.

A :class:`Session` additionally supports the mixed CPU/technique flows
the case studies need: running trace segments, flushing cache lines
(CLFLUSH), and executing technique operations (RowClone, profiling
requests) as critical-mode episodes.

How the host walks that flow is delegated to an emulation engine
(:mod:`repro.core.engine`): the event-driven skip-ahead core by default,
or the cycle-stepped reference via ``engine="cycle"`` /
``REPRO_ENGINE=cycle``.  Engine choice never changes results — only how
fast the host produces them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.bender.engine import ExecResult
from repro.core.channels import Channel, ChannelSet
from repro.core.config import SystemConfig
from repro.core.easyapi import CostModel, EasyAPI
from repro.core.engine import EmulationDeadlock, make_engine, resolve_engine_name
from repro.core.smc import SoftwareMemoryController
from repro.core.stats import Breakdown, CoreResult, CoreServiceTracker, RunResult
from repro.core.tile import EasyTile
from repro.core.timescale import TimeScalingCounters
from repro.cpu.cache import Cache, CacheHierarchy, CacheStats
from repro.cpu.memtrace import Trace
from repro.cpu.prefetch import PrefetchConfig, StreamPrefetcher, prefetch_from_env
from repro.cpu.processor import MemoryRequest, Processor
from repro.dram.address import AddressMapper
from repro.dram.timing import PS_PER_S, period_ps

__all__ = ["EasyDRAMSystem", "EmulationDeadlock", "Session", "SessionCore"]


class EasyDRAMSystem:
    """One configured EasyDRAM instance (hardware + software controller).

    ``engine`` selects how the host executes the emulation — ``"event"``
    (the skip-ahead event-driven core, default) or ``"cycle"`` (the
    cycle-stepped reference) — and may also be set globally through the
    ``REPRO_ENGINE`` environment variable.  Both engines produce
    bit-identical results; see :mod:`repro.core.engine`.

    Topology follows ``config.geometry``: one tile + software memory
    controller pair per channel, all sharing one topology-wide address
    mapper and one set of time-scaling counters.  On the paper's
    single-channel system :attr:`smc` *is* the lone controller; with
    ``channels > 1`` it is a :class:`~repro.core.channels.ChannelSet`
    routing each request to its channel's controller.
    """

    def __init__(self, config: SystemConfig,
                 costs: CostModel | None = None,
                 engine: str | None = None) -> None:
        self.config = config
        self.engine_name = resolve_engine_name(engine)
        self.counters = TimeScalingCounters()
        mapper = AddressMapper(config.geometry, config.mapping_scheme)
        self.channels: list[Channel] = []
        for index in range(config.geometry.channels):
            tile = EasyTile(config, mapper=mapper, channel=index)
            api = EasyAPI(tile, costs=costs)
            smc = SoftwareMemoryController(config, tile, api, self.counters)
            self.channels.append(Channel(index, tile, api, smc))
        first = self.channels[0]
        self.tile = first.tile
        self.api = first.api
        self.smc = (first.smc if len(self.channels) == 1
                    else ChannelSet(self.channels))

    # -- topology ----------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def tiles(self) -> list[EasyTile]:
        return [c.tile for c in self.channels]

    @property
    def smcs(self) -> list[SoftwareMemoryController]:
        return [c.smc for c in self.channels]

    def smc_for(self, channel: int) -> SoftwareMemoryController:
        """The software memory controller driving one channel."""
        return self.channels[channel].smc

    def api_for(self, channel: int) -> EasyAPI:
        """One channel's EasyAPI instance."""
        return self.channels[channel].api

    def device_for(self, channel: int):
        """One channel's DRAM device."""
        return self.channels[channel].tile.device

    # -- convenience -------------------------------------------------------

    def session(self, workload_name: str = "workload",
                engine: str | None = None) -> "Session":
        """Start a fresh execution session (resets processor-side state).

        ``engine`` overrides the system's engine for this session only —
        the equivalence tests use this to run the same system definition
        under both engines.
        """
        return Session(self, workload_name,
                       engine=engine if engine is not None else self.engine_name)

    def run(self, trace: Trace, workload_name: str = "workload") -> RunResult:
        """Run a single trace to completion and return its results."""
        session = self.session(workload_name)
        session.run_trace(trace)
        return session.finish()

    @property
    def mapper(self):
        return self.tile.mapper

    @property
    def device(self):
        return self.tile.device


@dataclass
class SessionCore:
    """One emulated core of a session: processor + private caches."""

    index: int
    workload_name: str
    processor: Processor
    hierarchy: CacheHierarchy


class Session:
    """A running emulation: processor state persists across trace segments.

    A session starts single-core — :attr:`processor` and
    :attr:`hierarchy` are core 0, and every paper artifact drives
    exactly that path.  :meth:`add_core` grows the session into a
    multi-core shared-memory scenario: each core gets private caches and
    its own MLP-gated request stream, all cores share the memory system
    (channels, controllers, DRAM), and :meth:`run_cores` drives them
    under round-robin issue arbitration at the SMC boundary.
    """

    def __init__(self, system: EasyDRAMSystem, workload_name: str,
                 engine: str | None = None) -> None:
        self.system = system
        self.workload_name = workload_name
        config = system.config
        self.cores: list[SessionCore] = []
        first = self._make_core(workload_name)
        self.hierarchy = first.hierarchy
        self.processor = first.processor
        self.engine = make_engine(engine if engine is not None
                                  else system.engine_name)
        self._pending: list[MemoryRequest] = []
        self._core_tracker: CoreServiceTracker | None = None
        #: Optional per-core solo reference cycles (``{core index:
        #: cycles}``) — when set before :meth:`finish`, per-core
        #: slowdowns (shared cycles / solo cycles) are reported.
        self.solo_cycles: dict[int, int] | None = None
        self._wall_start = time.perf_counter()
        self._proc_period = period_ps(config.processor.emulated_freq_hz)

    def _make_core(self, workload_name: str,
                   prefetch: PrefetchConfig | None = None) -> SessionCore:
        config = self.system.config
        l1 = Cache("L1D", config.l1.size_bytes, config.l1.assoc,
                   config.l1.line_bytes, config.l1.hit_latency)
        l2 = Cache("L2", config.l2.size_bytes, config.l2.assoc,
                   config.l2.line_bytes, config.l2.hit_latency)
        hierarchy = CacheHierarchy(l1, l2, memory_fill_latency=2)
        processor = Processor(config.processor, hierarchy, trace=(),
                              core_id=len(self.cores))
        # Bulk-decode each block's DRAM-bound addresses into the
        # mapper's memo as soon as the cache filter produces them.
        processor.prime_hook = self.system.mapper.prime
        if self.system.num_channels > 1:
            # Tag every DRAM request with its decoded channel at issue
            # time; the ChannelSet routes on the tag without re-decoding.
            processor.channel_hook = self.system.mapper.channel_of
        core = SessionCore(len(self.cores), workload_name, processor,
                           hierarchy)
        self.cores.append(core)
        # Per-core stream prefetcher: an explicit config wins; otherwise
        # the REPRO_PREFETCH knob (read here, at core construction, like
        # every other knob) applies to every core.  Default: no
        # prefetcher and no hook on the issue path.
        if prefetch is None:
            prefetch = prefetch_from_env()
        if prefetch is not None:
            self.set_prefetcher(core.index, prefetch)
        return core

    # -- core loop (Fig 5/6) -----------------------------------------------------

    def run_trace(self, trace: Trace) -> None:
        """Execute one trace segment to completion (delegates to the engine)."""
        self.engine.run_trace(self, trace)

    # -- multi-core scenarios ------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def add_core(self, workload_name: str | None = None,
                 prefetch: PrefetchConfig | None = None) -> SessionCore:
        """Add one emulated core (private caches, shared memory system).

        The first call flips the session into multi-core mode: a shared
        :class:`~repro.core.stats.CoreServiceTracker` is installed on
        every channel's controller so serviced requests and row-buffer
        outcomes are attributed per core.  Single-core sessions never
        install one, keeping the paper's hot paths untouched.
        ``prefetch`` gives this core a stream prefetcher with its own
        degree/distance (see :meth:`set_prefetcher`).
        """
        if workload_name is None:
            workload_name = f"core{len(self.cores)}"
        core = self._make_core(workload_name, prefetch=prefetch)
        if self._core_tracker is None:
            self._core_tracker = CoreServiceTracker(len(self.cores))
            self.system.smc.set_core_tracker(self._core_tracker)
        else:
            self._core_tracker.grow(len(self.cores))
        return core

    def set_prefetcher(self, core_index: int,
                       config: PrefetchConfig | None) -> None:
        """Install (or remove, with ``None``) one core's stream prefetcher.

        The prefetcher observes the core's demand LLC-miss fills and
        issues prefetch-tagged requests bounded to the mapper's
        decodable address range; see :mod:`repro.cpu.prefetch`.
        """
        core = self.cores[core_index]
        if config is None:
            core.processor.prefetcher = None
            return
        system = self.system
        core.processor.prefetcher = StreamPrefetcher(
            config, line_bytes=system.config.l2.line_bytes,
            limit=system.config.geometry.total_bytes)

    def prefetch_stats(self) -> dict[int, "object"]:
        """Per-core prefetcher stats (cores without a prefetcher omitted)."""
        return {core.index: core.processor.prefetcher.stats
                for core in self.cores
                if core.processor.prefetcher is not None}

    def run_cores(self, traces: Sequence[Trace]) -> None:
        """Run one trace per core to completion under shared contention.

        ``traces[i]`` feeds core ``i``; the engine interleaves the cores
        with round-robin issue arbitration and services every merged
        pending batch in one critical-mode episode on the shared
        controllers.  With one core this is :meth:`run_trace` exactly.
        """
        if len(traces) != len(self.cores):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.cores)} cores")
        for core, trace in zip(self.cores, traces):
            core.processor.feed(trace)
        self.engine.run_cores(self, [c.processor for c in self.cores])

    # -- technique support --------------------------------------------------------

    def technique_op(self, stage, respect_timing: bool = False,
                     issue_cost_cycles: int = 4, channel: int = 0) -> ExecResult:
        """Execute a technique operation synchronously (MMIO semantics).

        ``stage`` is a callable receiving the :class:`EasyAPI`; it stages
        the DRAM command sequence.  The processor blocks until the
        operation's release cycle.  ``channel`` selects which channel's
        controller (and therefore which channel's EasyAPI/device) runs
        the operation; the paper's single-channel system always uses 0.
        """
        proc = self.processor
        proc.cycles += issue_cost_cycles
        release, result = self.system.smc_for(channel).technique_episode(
            stage, issue_cycle=proc.cycles, respect_timing=respect_timing)
        if release > proc.cycles:
            proc.stats.stall_cycles += release - proc.cycles
            proc.cycles = release
        self.system.counters.advance_processor(proc.cycles)
        return result

    def clflush_range(self, start_addr: int, size_bytes: int) -> int:
        """Flush a range through the CLFLUSH register (Section 7.1).

        Dirty lines become writeback requests serviced by the controller.
        Returns the number of dirty lines written back.
        """
        line = self.hierarchy.line_bytes
        proc = self.processor
        channel_of = (self.system.mapper.channel_of
                      if self.system.num_channels > 1 else None)
        writebacks: list[MemoryRequest] = []
        first = start_addr - (start_addr % line)
        addr = first
        rid = 1 << 30
        while addr < start_addr + size_bytes:
            wb_addr, _cost = proc.clflush(addr)
            if wb_addr is not None:
                writebacks.append(MemoryRequest(
                    rid=rid, addr=wb_addr, is_write=True,
                    tag=proc.cycles, is_writeback=True,
                    channel=0 if channel_of is None else channel_of(wb_addr)))
                rid += 1
            addr += line
        if writebacks:
            self.system.smc.service_pending(writebacks)
            # The flush instruction is ordered: the processor waits for
            # the last writeback to land in DRAM.
            last = max(r.release or 0 for r in writebacks)
            if last > proc.cycles:
                proc.stats.stall_cycles += last - proc.cycles
                proc.cycles = last
        self.system.counters.advance_processor(proc.cycles)
        return len(writebacks)

    # -- results ---------------------------------------------------------------

    def finish(self) -> RunResult:
        """Close the session and compute the run's results.

        Memory-side counters are summed over every channel's tile,
        controller, and device; on the paper's single-channel system the
        sums are the lone channel's counters verbatim.  Multi-core
        sessions additionally report per-core slices (``per_core``):
        processor-side counters come from each core's own processor,
        controller-side attribution from the shared
        :class:`~repro.core.stats.CoreServiceTracker`, and — when
        :attr:`solo_cycles` was set — each core's slowdown vs its solo
        run.  The run's headline ``cycles`` is then the *last* core's
        completion (the mix's makespan) while access counters sum over
        cores.
        """
        wall = time.perf_counter() - self._wall_start
        proc = self.processor
        system = self.system
        config = system.config
        tiles = system.tiles
        for smc in system.smcs:
            smc.stats.trcd_memo_capped = \
                smc.tile.device.cells.trcd_memo_capped
        scheduling_ps = sum(t.stats.scheduling_ps for t in tiles)
        dram_busy_ps = sum(t.stats.dram_busy_ps for t in tiles)
        total_sched_cycles = sum(s.stats.total_sched_cycles
                                 for s in system.smcs)
        multicore = len(self.cores) > 1
        if multicore:
            procs = [c.processor for c in self.cores]
            cycles = max(p.cycles for p in procs)
            stall_cycles = sum(p.stats.stall_cycles for p in procs)
            accesses = sum(p.stats.accesses for p in procs)
            loads = sum(p.stats.loads for p in procs)
            stores = sum(p.stats.stores for p in procs)
            llc_misses = sum(p.stats.llc_miss_requests for p in procs)
            writebacks = sum(p.stats.writeback_requests for p in procs)
            n_lat = sum(len(p.stats.request_latencies) for p in procs)
            avg_latency = (sum(sum(p.stats.request_latencies) for p in procs)
                           / n_lat if n_lat else 0.0)
            l1 = CacheStats()
            l2 = CacheStats()
            for core in self.cores:
                for total, level in ((l1, core.hierarchy.l1.stats),
                                     (l2, core.hierarchy.l2.stats)):
                    total.hits += level.hits
                    total.misses += level.misses
                    total.writebacks += level.writebacks
                    total.flushes += level.flushes
            # Total useful processing across cores; stall is summed too,
            # so Breakdown.total_ps reads as core-cycles (core-seconds).
            processing_ps = sum(p.cycles - p.stats.stall_cycles
                                for p in procs) * self._proc_period
            fpga_proc_cycles = sum(p.cycles for p in procs)
        else:
            cycles = proc.cycles
            stall_cycles = proc.stats.stall_cycles
            accesses = proc.stats.accesses
            loads = proc.stats.loads
            stores = proc.stats.stores
            llc_misses = proc.stats.llc_miss_requests
            writebacks = proc.stats.writeback_requests
            avg_latency = proc.stats.avg_request_latency
            l1 = self.hierarchy.l1.stats
            l2 = self.hierarchy.l2.stats
            processing_ps = (cycles - stall_cycles) * self._proc_period
            fpga_proc_cycles = cycles
        emulated_ps = cycles * self._proc_period
        stall_ps = stall_cycles * self._proc_period
        breakdown = Breakdown(
            processing_ps=processing_ps,
            scheduling_ps=scheduling_ps,
            main_memory_ps=dram_busy_ps,
            stall_ps=stall_ps,
        )
        fpga_ps = (
            fpga_proc_cycles * config.processor_domain.fpga_period_ps
            + total_sched_cycles * config.controller_domain.fpga_period_ps
            + dram_busy_ps)
        return RunResult(
            config_name=config.name,
            workload_name=self.workload_name,
            cycles=cycles,
            emulated_ps=emulated_ps,
            accesses=accesses,
            loads=loads,
            stores=stores,
            stall_cycles=stall_cycles,
            llc_miss_requests=llc_misses,
            writeback_requests=writebacks,
            avg_request_latency_cycles=avg_latency,
            l1=l1,
            l2=l2,
            row_hits=sum(t.stats.row_hits for t in tiles),
            row_misses=sum(t.stats.row_misses for t in tiles),
            row_conflicts=sum(t.stats.row_conflicts for t in tiles),
            refreshes=sum(t.stats.refreshes_issued for t in tiles),
            technique_ops=sum(t.stats.technique_ops for t in tiles),
            dram_commands=sum(c.tile.device.stats.total_commands()
                              for c in system.channels),
            breakdown=breakdown,
            wall_seconds=wall,
            estimated_fpga_seconds=fpga_ps / PS_PER_S,
            requests_per_channel=[s.stats.serviced_reads
                                  + s.stats.serviced_writes
                                  for s in system.smcs],
            per_core=self._per_core_results() if multicore else [],
        )

    def _per_core_results(self) -> list[CoreResult]:
        """One :class:`CoreResult` per core (multi-core sessions only)."""
        tracker = self._core_tracker
        solo = self.solo_cycles or {}
        results = []
        for core in self.cores:
            stats = core.processor.stats
            index = core.index
            solo_ref = solo.get(index, 0)
            results.append(CoreResult(
                core=index,
                workload_name=core.workload_name,
                cycles=core.processor.cycles,
                accesses=stats.accesses,
                loads=stats.loads,
                stores=stats.stores,
                stall_cycles=stats.stall_cycles,
                llc_miss_requests=stats.llc_miss_requests,
                writeback_requests=stats.writeback_requests,
                avg_request_latency_cycles=stats.avg_request_latency,
                serviced_reads=tracker.reads[index] if tracker else 0,
                serviced_writes=tracker.writes[index] if tracker else 0,
                serviced_prefetches=(tracker.prefetches[index]
                                     if tracker else 0),
                row_hits=tracker.row_hits[index] if tracker else 0,
                row_misses=tracker.row_misses[index] if tracker else 0,
                row_conflicts=tracker.row_conflicts[index] if tracker else 0,
                slowdown=(core.processor.cycles / solo_ref
                          if solo_ref else 0.0),
            ))
        return results
