"""EasyTile: the hardware module wrapping the programmable core.

Figure 7's EasyTile packs the programmable core, DRAM Bender, and the
helper hardware: the incoming/outgoing request FIFOs, the command and
readback buffers, the scratchpad, and the tile control logic that moves
requests and data between them.  In this reproduction the tile owns the
DRAM device, the Bender engine, and the buffer objects; the software
memory controller reaches all of them through :class:`EasyAPI`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.bender.buffers import CommandBuffer, ReadbackBuffer
from repro.bender.engine import BenderEngine
from repro.core.config import SystemConfig
from repro.cpu.processor import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.cells import CellArrayModel
from repro.dram.device import DramDevice


@dataclass
class TileStats:
    """Tile-level counters (Figure 2's breakdown feeds on these)."""

    requests_received: int = 0
    responses_sent: int = 0
    refreshes_issued: int = 0
    technique_ops: int = 0
    scheduling_ps: int = 0      # emulated time spent in SMC logic
    dram_busy_ps: int = 0       # emulated time DRAM Bender was executing
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0


class EasyTile:
    """The EasyDRAM hardware tile: buffers, Bender, and the DRAM device."""

    def __init__(self, config: SystemConfig,
                 mapper: AddressMapper | None = None,
                 channel: int = 0) -> None:
        self.config = config
        self.channel = channel
        self.cells = CellArrayModel(config.geometry, config.cells)
        self.device = DramDevice(
            config.timing, config.geometry, cells=self.cells,
            strict_timing=False,
            track_row_activations=config.interference.track_row_activations,
            refresh_rank=config.interference.refresh_storm_rank)
        #: Multi-channel systems share one topology-wide mapper across
        #: every tile (the decode memo is then shared too).
        self.mapper = mapper if mapper is not None else AddressMapper(
            config.geometry, config.mapping_scheme)
        self.readback = ReadbackBuffer()
        self.command_buffer = CommandBuffer()
        self.engine = BenderEngine(self.device, readback=self.readback)
        #: Incoming request FIFO (hardware side of Figure 7, part 9).
        self.incoming: deque[MemoryRequest] = deque()
        self.stats = TileStats()

    # -- tile control logic -------------------------------------------------

    def push_request(self, request: MemoryRequest) -> None:
        """Memory-bus side: a processor request lands in the FIFO."""
        self.incoming.append(request)
        self.stats.requests_received += 1

    def pop_request(self) -> MemoryRequest:
        """Programmable-core side: move one request out of the FIFO."""
        if not self.incoming:
            raise IndexError("incoming request FIFO is empty")
        return self.incoming.popleft()

    @property
    def has_requests(self) -> bool:
        return bool(self.incoming)

    def classify_row_access(self, bank: int, row: int) -> str:
        """Row-buffer outcome for statistics: hit, miss, or conflict."""
        state = self.device.banks[bank]
        if state.open_row == row:
            self.stats.row_hits += 1
            return "hit"
        if state.open_row is None:
            self.stats.row_misses += 1
            return "miss"
        self.stats.row_conflicts += 1
        return "conflict"
