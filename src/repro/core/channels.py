"""Multi-channel memory-system façade.

The paper's evaluated system is one channel, so one
:class:`~repro.core.smc.SoftwareMemoryController` driving one
:class:`~repro.core.tile.EasyTile` is the default wiring and stays on
exactly the single-controller code path.  Config-driven topologies with
``Geometry.channels > 1`` instead instantiate one tile + controller pair
*per channel* and put this :class:`ChannelSet` façade in front of them:
it presents the controller interface the emulation engines drive
(``service_pending`` / ``service_pending_batched``) and routes each
request to the controller of the channel its address decoded to.
Technique episodes bypass the façade: ``Session.technique_op`` targets
the owning channel's controller directly via ``system.smc_for``.

Channels are independent command/data buses, so their controllers keep
independent scheduling and DRAM cursors — a critical-mode episode that
spans channels services each channel's slice of the batch on that
channel's own emulated timeline, which is exactly the channel-level
parallelism a real multi-channel system exposes.  Requests carry their
channel (:attr:`~repro.cpu.processor.MemoryRequest.channel`, tagged at
issue time by the processor's channel hook), so routing never re-decodes
an address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.easyapi import EasyAPI
from repro.core.smc import SmcStats, SoftwareMemoryController
from repro.core.tile import EasyTile
from repro.cpu.processor import MemoryRequest

__all__ = ["Channel", "ChannelSet"]


@dataclass
class Channel:
    """One memory channel's hardware + controller stack."""

    index: int
    tile: EasyTile
    api: EasyAPI
    smc: SoftwareMemoryController


class ChannelSet:
    """Controller façade over one :class:`Channel` per memory channel.

    Implements the subset of the :class:`SoftwareMemoryController`
    surface that the emulation engines and sessions drive, fanning each
    call out per channel.  Single-channel systems never construct one.
    """

    def __init__(self, channels: list[Channel]) -> None:
        if len(channels) < 2:
            raise ValueError("ChannelSet requires at least two channels")
        self.channels = channels
        self.smcs = [c.smc for c in channels]

    # -- request servicing --------------------------------------------------

    def _route(self, requests: list[MemoryRequest]) -> list[list[MemoryRequest]]:
        """Split a batch by channel, preserving per-channel order."""
        groups: list[list[MemoryRequest]] = [[] for _ in self.channels]
        for request in requests:
            groups[request.channel].append(request)
        return groups

    def service_pending(self, requests: list[MemoryRequest]) -> None:
        """Serve a batch: each channel's controller serves its slice."""
        if not requests:
            return
        for group, smc in zip(self._route(requests), self.smcs):
            if group:
                smc.service_pending(group)

    def service_pending_batched(
            self, requests: list[MemoryRequest],
            refresh_sink: Callable[[int], None] | None = None) -> bool:
        """Batched bank-parallel servicing, channel by channel.

        Returns ``True`` only if *every* channel's slice took the
        batched path (the engine counts fallback episodes).
        """
        if not requests:
            return True
        all_batched = True
        for group, smc in zip(self._route(requests), self.smcs):
            if group and not smc.service_pending_batched(
                    group, refresh_sink=refresh_sink):
                all_batched = False
        return all_batched

    # -- controller hooks and aggregate statistics --------------------------

    @property
    def serve_hook(self):
        """The per-request serve hook (shared by every channel)."""
        return self.smcs[0].serve_hook

    @serve_hook.setter
    def serve_hook(self, hook) -> None:
        for smc in self.smcs:
            smc.serve_hook = hook

    def set_core_tracker(self, tracker) -> None:
        """Install one shared per-core service tracker on every channel.

        Channels are independent buses but core attribution is global:
        requests from one core spread over every channel, so all
        controllers write into the same
        :class:`~repro.core.stats.CoreServiceTracker`.
        """
        for smc in self.smcs:
            smc.set_core_tracker(tracker)

    @property
    def scheduler(self):
        return self.smcs[0].scheduler

    @scheduler.setter
    def scheduler(self, value) -> None:
        for smc in self.smcs:
            smc.scheduler = value

    @property
    def stats(self) -> SmcStats:
        """Aggregated controller counters across every channel."""
        total = SmcStats()
        for smc in self.smcs:
            s = smc.stats
            total.serviced_reads += s.serviced_reads
            total.serviced_writes += s.serviced_writes
            total.serviced_prefetches += s.serviced_prefetches
            total.refreshes += s.refreshes
            total.storm_refreshes += s.storm_refreshes
            total.technique_ops += s.technique_ops
            total.total_sched_cycles += s.total_sched_cycles
            total.batches_executed += s.batches_executed
        return total
