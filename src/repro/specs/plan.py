"""``repro plan``: what a spec run would do, before paying for it.

For every artifact in a compiled spec the plan reports the enumerated
point count, how many of those points are already in the result cache
(the same content-addressed probe ``repro run`` would make), and a
runtime estimate extrapolated from the sweep's declared cold-run cost
(:attr:`~repro.runner.spec.SweepSpec.runtime`) — so "how expensive is
this sweep, and how much of it is already paid for?" is answerable
without running anything.  With a shard selection the plan covers just
that shard's slice, which is how CI sizes its matrix.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.runner.cache import NullCache
from repro.specs.hashing import run_fingerprint, spec_hash
from repro.specs.model import CompiledSpec

_RUNTIME = re.compile(r"~?\s*([0-9.]+)\s*(s|sec|min|m)\b")


def parse_runtime(text: str) -> float | None:
    """Seconds encoded in a ``SweepSpec.runtime`` string (``"~45 s"``)."""
    match = _RUNTIME.search(text or "")
    if not match:
        return None
    value = float(match.group(1))
    return value * 60.0 if match.group(2) in ("min", "m") else value


def plan_spec(compiled: CompiledSpec, cache: NullCache,
              shard: Mapping[str, tuple[str, ...]] | None = None) -> dict:
    """Assemble the plan report (JSON-shaped; the CLI renders it)."""
    rows = []
    for entry in compiled.entries:
        sweep = entry.sweep
        chosen = entry.selected
        if shard is not None:
            ids = set(shard.get(sweep.artifact, ()))
            chosen = tuple(p for p in chosen if p.point_id in ids)
        cached = sum(1 for p in chosen if cache.has(p))
        est_total = parse_runtime(sweep.runtime)
        est_remaining = None
        if est_total is not None and entry.points:
            # The declared runtime covers the sweep's default point set;
            # scale by the fraction of points actually left to run.
            est_remaining = est_total * (len(chosen) - cached) \
                / len(entry.points)
        rows.append({
            "artifact": sweep.artifact,
            "title": sweep.title,
            "built": len(entry.points),
            "selected": len(chosen),
            "cached": cached,
            "to_run": len(chosen) - cached,
            "point_ids": [p.point_id for p in chosen],
            "est_seconds": est_remaining,
            "runtime": sweep.runtime,
        })
    est_known = [r["est_seconds"] for r in rows if r["est_seconds"]
                 is not None]
    return {
        "spec": compiled.spec.name,
        "path": compiled.spec.path,
        "spec_hash": spec_hash(compiled.spec),
        "run_fingerprint": run_fingerprint(compiled.spec),
        "artifacts": rows,
        "total_selected": sum(r["selected"] for r in rows),
        "total_cached": sum(r["cached"] for r in rows),
        "total_to_run": sum(r["to_run"] for r in rows),
        "est_seconds": sum(est_known) if est_known else None,
    }
