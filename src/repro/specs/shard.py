"""Deterministic sharding of a compiled spec's point set.

Shard ``k/N`` takes every Nth point of the spec's global enumeration
(artifacts in spec order, points in build order), starting at the k-1st.
The assignment depends only on the compiled spec, so N independent
processes — or CI jobs on different machines — each compute a disjoint
slice whose union is exactly the full point set, with no coordination
beyond agreeing on the spec file.  Round-robin over the *global* index
(rather than splitting per artifact) spreads a long artifact's points
across all shards, which is what balances wall-clock when sweeps differ
wildly in cost.

Merging is the result cache: every shard writes content-addressed
partials keyed on params + code fingerprint, so re-running the spec
unsharded over the union of the shards' cache directories reads every
point back and combines bit-identical artifacts (asserted by the
``sweep-shards`` CI matrix and ``tests/specs/test_shard.py``).
"""

from __future__ import annotations

import re

from repro.specs.model import CompiledSpec

_SHARD = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"k/N"`` into ``(k, n)``; raises ``ValueError`` when not
    ``1 <= k <= N``."""
    match = _SHARD.match(text.strip())
    if not match:
        raise ValueError(
            f"shard {text!r} is not of the form k/N (e.g. --shard 2/3)")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard {text!r} out of range: need 1 <= k <= N")
    return index, count


def shard_selection(compiled: CompiledSpec, index: int,
                    count: int) -> dict[str, tuple[str, ...]]:
    """``{artifact: selected point_ids}`` for shard ``index`` of ``count``.

    Artifacts whose points all land on other shards still appear, with
    an empty selection — the runner uses that to report them as skipped
    rather than silently dropping them from the manifest.
    """
    selection: dict[str, list[str]] = {
        entry.sweep.artifact: [] for entry in compiled.entries}
    position = 0
    for entry in compiled.entries:
        for point in entry.selected:
            if position % count == index - 1:
                selection[entry.sweep.artifact].append(point.point_id)
            position += 1
    return {name: tuple(ids) for name, ids in selection.items()}
