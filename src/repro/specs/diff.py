"""``repro diff``: the semantic delta between two experiment specs.

A text diff of two YAML files answers "which lines changed"; this
answers "which *runs* changed": artifacts added or removed, env knobs
and overrides that differ, point filters that now select a different
slice — and, when both specs compile, the concrete point ids gained and
lost per artifact.  Cosmetic edits (key order, comments, reflowed
strings) produce an empty delta, mirroring what :mod:`~repro.specs.
hashing` guarantees about the spec hash.
"""

from __future__ import annotations

from repro.specs.model import (
    ArtifactEntry,
    CompiledSpec,
    ExperimentSpec,
    SpecValidationError,
    compile_spec,
)


def _entry_map(spec: ExperimentSpec) -> dict[str, ArtifactEntry]:
    return {entry.selector: entry for entry in spec.entries}


def _point_ids(compiled: CompiledSpec | None) -> dict[str, tuple[str, ...]]:
    if compiled is None:
        return {}
    return {entry.sweep.artifact: tuple(p.point_id for p in entry.selected)
            for entry in compiled.entries}


def _try_compile(spec: ExperimentSpec) -> CompiledSpec | None:
    try:
        return compile_spec(spec)
    except SpecValidationError:
        return None


def diff_specs(a: ExperimentSpec, b: ExperimentSpec) -> list[str]:
    """Human-readable change lines, empty when semantically identical."""
    changes: list[str] = []
    for field in ("name", "description"):
        old, new = getattr(a, field), getattr(b, field)
        if old != new:
            changes.append(f"{field}: {old!r} -> {new!r}")
    for knob in sorted(set(a.env) | set(b.env)):
        old, new = a.env.get(knob), b.env.get(knob)
        if old == new:
            continue
        if old is None:
            changes.append(f"env +{knob}={new}")
        elif new is None:
            changes.append(f"env -{knob}={old}")
        else:
            changes.append(f"env {knob}: {old} -> {new}")
    entries_a, entries_b = _entry_map(a), _entry_map(b)
    for selector in [s for s in entries_a if s not in entries_b]:
        changes.append(f"artifact -{selector}")
    for selector in [s for s in entries_b if s not in entries_a]:
        changes.append(f"artifact +{selector}")
    for selector in [s for s in entries_a if s in entries_b]:
        ea, eb = entries_a[selector], entries_b[selector]
        for key in sorted(set(ea.overrides) | set(eb.overrides)):
            old = ea.overrides.get(key)
            new = eb.overrides.get(key)
            if old == new:
                continue
            if key not in ea.overrides:
                changes.append(f"{selector}: override +{key}={new!r}")
            elif key not in eb.overrides:
                changes.append(f"{selector}: override -{key}={old!r}")
            else:
                changes.append(
                    f"{selector}: override {key}: {old!r} -> {new!r}")
        if ea.include != eb.include:
            changes.append(f"{selector}: include {list(ea.include)} ->"
                           f" {list(eb.include)}")
        if ea.exclude != eb.exclude:
            changes.append(f"{selector}: exclude {list(ea.exclude)} ->"
                           f" {list(eb.exclude)}")
    # Point-level delta, when both specs compile against this checkout.
    points_a = _point_ids(_try_compile(a))
    points_b = _point_ids(_try_compile(b))
    if points_a and points_b:
        for artifact in sorted(set(points_a) | set(points_b)):
            ida = set(points_a.get(artifact, ()))
            idb = set(points_b.get(artifact, ()))
            gained = sorted(idb - ida)
            lost = sorted(ida - idb)
            if gained:
                changes.append(
                    f"{artifact}: +{len(gained)} points"
                    f" ({', '.join(gained[:6])}"
                    f"{', ...' if len(gained) > 6 else ''})")
            if lost:
                changes.append(
                    f"{artifact}: -{len(lost)} points"
                    f" ({', '.join(lost[:6])}"
                    f"{', ...' if len(lost) > 6 else ''})")
    return changes
