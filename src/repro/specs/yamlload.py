"""Line-anchored YAML loading for experiment specs.

``repro validate`` must point at the offending *line* of a spec, not
just name the file, so plain ``yaml.safe_load`` is not enough: it throws
the source positions away.  :func:`load_yaml` composes the document into
its node graph once, constructs the data from those same nodes, and
walks both in parallel to build a ``{path: line}`` side table.  Paths
are tuples of mapping keys and sequence indices
(``("artifacts", 2, "overrides")``), which is also how the schema
validator names locations.

PyYAML is the only dependency; it is declared in ``pyproject.toml`` and
imported lazily here so that every other ``repro`` entry point keeps
working on an interpreter without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class SpecLoadError(Exception):
    """A spec file could not be parsed at all (I/O or YAML syntax).

    ``str(err)`` is already ``file:line: message`` shaped when the
    parser reported a position.
    """


@dataclass
class YamlDoc:
    """A parsed YAML document plus a path -> source-line side table."""

    path: str
    data: Any
    lines: dict[tuple, int] = field(default_factory=dict)

    def line(self, *path) -> int | None:
        """Best-known source line for ``path`` (deepest recorded prefix)."""
        best = self.lines.get(())
        for i in range(len(path)):
            hit = self.lines.get(tuple(path[: i + 1]))
            if hit is not None:
                best = hit
        return best

    def anchor(self, *path) -> str:
        """``file:line`` label for error messages."""
        line = self.line(*path)
        return f"{self.path}:{line}" if line else self.path


def _walk(node, data, path: tuple, lines: dict[tuple, int]) -> None:
    import yaml

    # A mapping value's path is already anchored at its *key* line,
    # which reads better in errors ("overrides:" rather than the first
    # line inside it) — keep the earliest anchor.
    lines.setdefault(path, node.start_mark.line + 1)
    if isinstance(node, yaml.MappingNode) and isinstance(data, dict):
        for key_node, value_node in node.value:
            # Spec keys are plain scalars; anything fancier just falls
            # back to the container's line.
            key = key_node.value if isinstance(key_node, yaml.ScalarNode) \
                else None
            if key in data:
                lines[path + (key,)] = key_node.start_mark.line + 1
                _walk(value_node, data[key], path + (key,), lines)
    elif isinstance(node, yaml.SequenceNode) and isinstance(data, list):
        for index, item_node in enumerate(node.value):
            _walk(item_node, data[index], path + (index,), lines)


def load_yaml(path: str) -> YamlDoc:
    """Parse one YAML file into data plus line anchors.

    Raises :class:`SpecLoadError` with a ``file:line`` prefix on syntax
    errors, and on documents that are not a mapping at the top level.
    """
    import yaml

    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SpecLoadError(f"{path}: {exc.strerror or exc}") from None
    try:
        # One parse: compose keeps the source marks, and the loader can
        # construct the data from the composed nodes directly (text
        # parsing dominates spec-compilation cost, which the benchmark
        # harness gates against a fig08 run).
        loader = yaml.SafeLoader(text)
        try:
            node = loader.get_single_node()
            data = loader.construct_document(node) if node is not None \
                else None
        finally:
            loader.dispose()
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        where = f"{path}:{mark.line + 1}" if mark else path
        problem = getattr(exc, "problem", None) or str(exc)
        raise SpecLoadError(f"{where}: invalid YAML: {problem}") from None
    doc = YamlDoc(path=path, data=data)
    if node is not None:
        _walk(node, data, (), doc.lines)
    return doc
