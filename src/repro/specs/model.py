"""Experiment-spec schema, validation, and compilation onto the registry.

A spec is a YAML document describing which artifacts to regenerate and
how their sweeps are parameterized::

    version: 1
    name: fig16-grid
    description: Core-count x scheduler contention grid.
    env:                       # optional REPRO_* knob settings
      REPRO_FULL: "0"
    artifacts:
      - artifact: fig16        # exact id or glob ("fig1*")
        overrides:             # keyword arguments to the sweep's
          core_counts: [1, 2, 4]    # build_points(...)
          schedulers: [fcfs, fr-fcfs]
        points:                # optional point_id filters (globs)
          include: ["*"]
          exclude: ["4core-fcfs"]

Validation happens in two layers, both surfaced by ``repro validate``:

* :func:`load_spec` checks the *document*: required keys, types, no
  unknown keys, env knobs named like knobs.  Every problem is anchored
  ``file:line`` via :class:`~repro.specs.yamlload.YamlDoc`.
* :func:`compile_spec` checks the spec *against the code*: artifact ids
  resolve in the registry (with did-you-mean suggestions), override
  names exist in the sweep's ``build_points`` signature, env knobs are
  in the generated knob inventory (the same one behind
  ``tools/gen_knob_docs.py`` / ``docs/KNOBS.md``), and point filters
  actually select something.

Compilation applies ``env`` while building points (``REPRO_FULL`` and
friends are read at build time) and returns the fully enumerated,
filtered point set per artifact — the single source of truth that
``plan``, ``hash``, sharding, and ``run --spec`` all share.
"""

from __future__ import annotations

import fnmatch
import inspect
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.runner import registry
from repro.runner.spec import SweepPoint, SweepSpec
from repro.specs.yamlload import SpecLoadError, YamlDoc, load_yaml

#: The only schema revision this tree understands.
SCHEMA_VERSION = 1

_TOP_KEYS = {"version", "name", "description", "env", "artifacts"}
_ENTRY_KEYS = {"artifact", "overrides", "points"}
_POINTS_KEYS = {"include", "exclude"}
_KNOB_NAME = re.compile(r"^REPRO_[A-Z0-9_]+$")
_ENV_READ = re.compile(r"environ[^\n]*?[\"'](REPRO_[A-Z0-9_]+)[\"']")


class SpecValidationError(Exception):
    """One or more schema/cross-check failures, each ``file:line``-anchored."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__("\n".join(self.problems))


@dataclass(frozen=True)
class ArtifactEntry:
    """One validated ``artifacts:`` list entry (pre-registry)."""

    selector: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()


@dataclass(frozen=True)
class ExperimentSpec:
    """A schema-valid spec document (not yet checked against the code)."""

    path: str
    name: str
    description: str
    env: Mapping[str, str]
    entries: tuple[ArtifactEntry, ...]


@dataclass(frozen=True)
class CompiledEntry:
    """One artifact of a compiled spec: its sweep and selected points."""

    sweep: SweepSpec
    overrides: Mapping[str, Any]
    points: tuple[SweepPoint, ...]       #: every point the sweep builds
    selected: tuple[SweepPoint, ...]     #: after include/exclude filters

    @property
    def filtered(self) -> bool:
        return len(self.selected) != len(self.points)


@dataclass(frozen=True)
class CompiledSpec:
    """A spec resolved against the live registry and knob inventory."""

    spec: ExperimentSpec
    entries: tuple[CompiledEntry, ...]

    def total_points(self) -> int:
        return sum(len(e.selected) for e in self.entries)


@lru_cache(maxsize=1)
def knob_inventory() -> frozenset[str]:
    """Every ``REPRO_*`` environment knob the source tree reads.

    This is the same scan ``tools/gen_knob_docs.py`` builds
    ``docs/KNOBS.md`` from, run over the installed package, so a spec's
    ``env:`` section is cross-checked against the canonical knob
    inventory rather than a hand-kept list.
    """
    import repro

    names: set[str] = set()
    root = Path(repro.__file__).resolve().parent
    for path in sorted(root.rglob("*.py")):
        for match in _ENV_READ.finditer(path.read_text(encoding="utf-8")):
            names.add(match.group(1))
    return frozenset(names)


@contextmanager
def applied_env(env: Mapping[str, str]) -> Iterator[None]:
    """Temporarily apply a spec's ``env`` knobs to ``os.environ``."""
    saved = {name: os.environ.get(name) for name in env}
    os.environ.update({k: str(v) for k, v in env.items()})
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _scalar(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool))


def _check_glob_list(doc: YamlDoc, value: Any, path: tuple,
                     problems: list[str]) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
            isinstance(p, str) and p for p in value):
        problems.append(f"{doc.anchor(*path)}: '{path[-1]}' must be a list"
                        " of non-empty point-id globs")
        return ()
    return tuple(value)


def _load_entry(doc: YamlDoc, raw: Any, index: int,
                problems: list[str]) -> ArtifactEntry | None:
    where = ("artifacts", index)
    if not isinstance(raw, dict):
        problems.append(f"{doc.anchor(*where)}: artifacts[{index}] must be"
                        " a mapping with an 'artifact' key")
        return None
    for key in sorted(set(raw) - _ENTRY_KEYS):
        problems.append(f"{doc.anchor(*where, key)}: unknown key {key!r}"
                        f" (expected one of: {', '.join(sorted(_ENTRY_KEYS))})")
    selector = raw.get("artifact")
    if not isinstance(selector, str) or not selector:
        problems.append(f"{doc.anchor(*where)}: 'artifact' must be a"
                        " non-empty artifact id or glob")
        return None
    overrides = raw.get("overrides", {})
    if not isinstance(overrides, dict) or not all(
            isinstance(k, str) for k in overrides):
        problems.append(f"{doc.anchor(*where, 'overrides')}: 'overrides'"
                        " must be a mapping of build_points keyword"
                        " arguments")
        overrides = {}
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    points = raw.get("points", {})
    if points is not None and not isinstance(points, dict):
        problems.append(f"{doc.anchor(*where, 'points')}: 'points' must be"
                        " a mapping with 'include' and/or 'exclude' lists")
    elif isinstance(points, dict):
        for key in sorted(set(points) - _POINTS_KEYS):
            problems.append(
                f"{doc.anchor(*where, 'points', key)}: unknown key {key!r}"
                " under 'points' (expected 'include'/'exclude')")
        if "include" in points:
            include = _check_glob_list(
                doc, points["include"], where + ("points", "include"),
                problems)
        if "exclude" in points:
            exclude = _check_glob_list(
                doc, points["exclude"], where + ("points", "exclude"),
                problems)
    return ArtifactEntry(selector=selector, overrides=overrides,
                         include=include, exclude=exclude)


def load_spec(path: str) -> ExperimentSpec:
    """Parse and schema-check one spec file.

    Raises :class:`~repro.specs.yamlload.SpecLoadError` on unreadable or
    syntactically invalid YAML, :class:`SpecValidationError` (carrying
    every problem, ``file:line``-anchored) on schema violations.
    """
    doc = load_yaml(path)
    problems: list[str] = []
    data = doc.data
    if not isinstance(data, dict):
        raise SpecValidationError(
            [f"{path}: spec must be a YAML mapping, not"
             f" {type(data).__name__}"])
    for key in sorted(set(data) - _TOP_KEYS):
        problems.append(f"{doc.anchor(key)}: unknown key {key!r}"
                        f" (expected one of: {', '.join(sorted(_TOP_KEYS))})")
    version = data.get("version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"{doc.anchor('version')}: 'version' must be {SCHEMA_VERSION}"
            f" (got {version!r})")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{doc.anchor('name')}: 'name' must be a non-empty"
                        " string")
        name = ""
    description = data.get("description", "")
    if not isinstance(description, str):
        problems.append(f"{doc.anchor('description')}: 'description' must"
                        " be a string")
        description = ""
    env_raw = data.get("env", {})
    env: dict[str, str] = {}
    if not isinstance(env_raw, dict):
        problems.append(f"{doc.anchor('env')}: 'env' must be a mapping of"
                        " REPRO_* knobs to values")
    else:
        for key, value in env_raw.items():
            if not isinstance(key, str) or not _KNOB_NAME.match(key):
                problems.append(
                    f"{doc.anchor('env', key)}: env knob {key!r} must match"
                    " REPRO_[A-Z0-9_]+")
            elif not _scalar(value):
                problems.append(
                    f"{doc.anchor('env', key)}: env knob {key} needs a"
                    " scalar value")
            else:
                # YAML booleans render as Python's True/False; knobs are
                # parsed as "0"/"1" strings throughout the tree.
                if isinstance(value, bool):
                    value = int(value)
                env[key] = str(value)
    entries: list[ArtifactEntry] = []
    artifacts = data.get("artifacts")
    if not isinstance(artifacts, list) or not artifacts:
        problems.append(f"{doc.anchor('artifacts')}: 'artifacts' must be a"
                        " non-empty list of artifact entries")
    else:
        for index, raw in enumerate(artifacts):
            entry = _load_entry(doc, raw, index, problems)
            if entry is not None:
                entries.append(entry)
    if problems:
        raise SpecValidationError(problems)
    return ExperimentSpec(path=path, name=name, description=description,
                          env=env, entries=tuple(entries))


def _build_kwargs_problems(sweep: SweepSpec, overrides: Mapping[str, Any],
                           anchor: str) -> list[str]:
    """Override names that ``build_points`` would reject."""
    try:
        signature = inspect.signature(sweep.build_points)
    except (TypeError, ValueError):  # builtins/partials without signatures
        return []
    params = signature.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return []
    accepted = {p.name for p in params
                if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)}
    problems = []
    for key in overrides:
        if key not in accepted:
            known = ", ".join(sorted(accepted)) or "(none)"
            problems.append(
                f"{anchor}: sweep {sweep.artifact!r} has no override"
                f" {key!r} (accepted: {known})")
    return problems


def _filter_points(points: tuple[SweepPoint, ...], entry: ArtifactEntry,
                   anchor: str, problems: list[str]) -> tuple[SweepPoint, ...]:
    ids = [p.point_id for p in points]
    keep = set(ids)
    if entry.include:
        keep = set()
        for pattern in entry.include:
            matched = fnmatch.filter(ids, pattern)
            if not matched:
                problems.append(f"{anchor}: include pattern {pattern!r}"
                                " matches no points of"
                                f" {points[0].artifact!r}")
            keep.update(matched)
    for pattern in entry.exclude:
        matched = fnmatch.filter(ids, pattern)
        if not matched:
            problems.append(f"{anchor}: exclude pattern {pattern!r} matches"
                            f" no points of {points[0].artifact!r}")
        keep.difference_update(matched)
    if not keep and not problems:
        problems.append(f"{anchor}: point filters leave no points of"
                        f" {points[0].artifact!r} to run")
    return tuple(p for p in points if p.point_id in keep)


def compile_spec(spec: ExperimentSpec) -> CompiledSpec:
    """Resolve a schema-valid spec against the registry and build points.

    Raises :class:`SpecValidationError` listing every cross-check
    failure; on success returns the enumerated point sets that ``plan``,
    ``hash``, sharding, and ``run --spec`` operate on.
    """
    doc = load_yaml(spec.path)
    problems: list[str] = []
    inventory = knob_inventory()
    for key in spec.env:
        if key not in inventory:
            close = registry.closest(key, sorted(inventory))
            hint = f" (did you mean {close}?)" if close else ""
            problems.append(
                f"{doc.anchor('env', key)}: unknown knob {key}{hint};"
                " the inventory is generated from the source tree, see"
                " docs/KNOBS.md")
    compiled: list[CompiledEntry] = []
    seen: dict[str, str] = {}
    with applied_env(spec.env):
        for index, entry in enumerate(spec.entries):
            anchor = doc.anchor("artifacts", index)
            try:
                names = registry.resolve(entry.selector)
            except KeyError as exc:
                problems.append(f"{anchor}: {exc.args[0]}")
                continue
            for name in names:
                if name in seen:
                    problems.append(
                        f"{anchor}: artifact {name!r} already selected by"
                        f" entry {seen[name]!r}; each artifact may appear"
                        " once per spec")
                    continue
                seen[name] = entry.selector
                sweep = registry.get(name)
                bad = _build_kwargs_problems(
                    sweep, entry.overrides,
                    doc.anchor("artifacts", index, "overrides"))
                if bad:
                    problems.extend(bad)
                    continue
                try:
                    points = tuple(
                        sweep.build_points(**dict(entry.overrides)))
                except Exception as exc:
                    problems.append(
                        f"{doc.anchor('artifacts', index, 'overrides')}:"
                        f" building {name!r} points failed:"
                        f" {type(exc).__name__}: {exc}")
                    continue
                selected = _filter_points(
                    points, entry, doc.anchor("artifacts", index, "points"),
                    problems)
                compiled.append(CompiledEntry(
                    sweep=sweep, overrides=dict(entry.overrides),
                    points=points, selected=selected))
    if problems:
        raise SpecValidationError(problems)
    return CompiledSpec(spec=spec, entries=tuple(compiled))


def load_and_compile(path: str) -> CompiledSpec:
    """Convenience: ``compile_spec(load_spec(path))``."""
    return compile_spec(load_spec(path))


__all__ = [
    "ArtifactEntry",
    "CompiledEntry",
    "CompiledSpec",
    "ExperimentSpec",
    "SpecLoadError",
    "SpecValidationError",
    "applied_env",
    "compile_spec",
    "knob_inventory",
    "load_and_compile",
    "load_spec",
]
