"""Declarative YAML experiment specs over the sweep runner.

The user surface for sweeps: a spec file names artifacts, knob
settings, grid overrides, and point filters; ``repro
validate/plan/diff/hash`` inspect it without running anything, and
``repro run --spec`` (optionally ``--shard k/N``) executes it through
the cached scheduler.  See ``specs/*.yaml`` for the checked-in suite
and ``docs/EXPERIMENTS.md`` for the format.
"""

from repro.specs.diff import diff_specs
from repro.specs.hashing import (
    check_hash,
    run_fingerprint,
    spec_hash,
    update_hashes,
)
from repro.specs.model import (
    CompiledEntry,
    CompiledSpec,
    ExperimentSpec,
    SpecLoadError,
    SpecValidationError,
    applied_env,
    compile_spec,
    knob_inventory,
    load_and_compile,
    load_spec,
)
from repro.specs.plan import parse_runtime, plan_spec
from repro.specs.shard import parse_shard, shard_selection

__all__ = [
    "CompiledEntry",
    "CompiledSpec",
    "ExperimentSpec",
    "SpecLoadError",
    "SpecValidationError",
    "applied_env",
    "check_hash",
    "compile_spec",
    "diff_specs",
    "knob_inventory",
    "load_and_compile",
    "load_spec",
    "parse_runtime",
    "parse_shard",
    "plan_spec",
    "run_fingerprint",
    "shard_selection",
    "spec_hash",
    "update_hashes",
]
