"""Content addresses for experiment specs.

Two digests, two lifetimes:

* :func:`spec_hash` — canonical content address of the spec *document*
  alone (schema-normalized, key-order independent).  Stable across code
  changes; checked into ``specs/HASHES.json`` and gated in CI by
  ``repro hash --check`` exactly like the ``docs/KNOBS.md`` drift gate,
  so a semantic edit to a checked-in spec cannot land without its hash
  (and therefore the reviewer's attention) following along.
* :func:`run_fingerprint` — ``spec_hash`` combined with the runner's
  source :func:`~repro.runner.cache.code_fingerprint`.  This is the
  address of a concrete *run*: two invocations with equal fingerprints
  produce bit-identical artifacts, which is what makes sharded and
  resumed runs mergeable with confidence.

Both are computed from the schema-level model (not the YAML text), so
reordering keys, reflowing strings, or adding comments never changes a
hash while any change to env knobs, overrides, filters, or artifact
selection always does.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.specs.model import ExperimentSpec

#: Basename of the per-directory hash lockfile next to checked-in specs.
HASHES_BASENAME = "HASHES.json"


def canonical_form(spec: ExperimentSpec) -> dict:
    """The hash input: every semantic field, nothing positional but
    the artifact entry order (which is the run order)."""
    return {
        "version": 1,
        "name": spec.name,
        "description": spec.description,
        "env": dict(spec.env),
        "artifacts": [{
            "artifact": entry.selector,
            "overrides": dict(entry.overrides),
            "include": list(entry.include),
            "exclude": list(entry.exclude),
        } for entry in spec.entries],
    }


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def spec_hash(spec: ExperimentSpec) -> str:
    """Content address of the spec document (code-independent)."""
    return _digest(canonical_form(spec))


def run_fingerprint(spec: ExperimentSpec) -> str:
    """Content address of spec + simulator source (what a run produces)."""
    from repro.runner.cache import code_fingerprint

    return _digest({"spec": spec_hash(spec), "code": code_fingerprint()})


def hashes_path(spec_path: str) -> Path:
    """The lockfile governing ``spec_path`` (same directory)."""
    return Path(spec_path).resolve().parent / HASHES_BASENAME


def read_hashes(lock: Path) -> dict[str, str]:
    if not lock.is_file():
        return {}
    try:
        data = json.loads(lock.read_text(encoding="utf-8"))
    except ValueError:
        return {}
    return {k: v for k, v in data.items() if isinstance(v, str)}


def check_hash(spec: ExperimentSpec) -> str | None:
    """Why the lockfile disagrees with ``spec`` (None = up to date)."""
    lock = hashes_path(spec.path)
    recorded = read_hashes(lock).get(Path(spec.path).name)
    actual = spec_hash(spec)
    if recorded is None:
        return (f"{spec.path}: no recorded hash in {lock}; run"
                " `repro hash --update` and commit the result")
    if recorded != actual:
        return (f"{spec.path}: stale hash (recorded {recorded}, actual"
                f" {actual}); run `repro hash --update` and commit the"
                " result")
    return None


def update_hashes(specs: list[ExperimentSpec]) -> list[Path]:
    """Rewrite each affected lockfile with the specs' current hashes."""
    by_lock: dict[Path, list[ExperimentSpec]] = {}
    for spec in specs:
        by_lock.setdefault(hashes_path(spec.path), []).append(spec)
    written = []
    for lock, members in sorted(by_lock.items()):
        entries = read_hashes(lock)
        entries.update({Path(s.path).name: spec_hash(s) for s in members})
        lock.write_text(
            json.dumps(dict(sorted(entries.items())), indent=2) + "\n",
            encoding="utf-8")
        written.append(lock)
    return written
