"""Per-fingerprint staleness tracking for the service result store.

The store's keys embed the source fingerprint, so a code edit makes
every previously stored row unreachable through the cache interface —
correctness never depends on this module.  What it adds is
*visibility*: :func:`refresh_staleness` flags the rows a fingerprint
bump left behind, so SQL consumers see an explicit ``stale = 1``
instead of silently mixing results computed by different simulators.
The server runs it at startup and before reporting /health; flagged
rows remain queryable forever (regression archaeology across code
versions is a feature, not a leak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.store import ResultStore


@dataclass(frozen=True)
class StalenessReport:
    """What one staleness sweep found and flagged."""

    #: Fingerprint of the source tree the store currently serves.
    code_fingerprint: str
    #: Rows newly flagged by this sweep (previously fresh, other code).
    points_flagged: int
    jobs_flagged: int
    #: Total stale rows after the sweep (includes previously flagged).
    points_stale: int
    jobs_stale: int

    @property
    def flagged(self) -> int:
        return self.points_flagged + self.jobs_flagged

    def as_dict(self) -> dict:
        return {
            "code_fingerprint": self.code_fingerprint,
            "points_flagged": self.points_flagged,
            "jobs_flagged": self.jobs_flagged,
            "points_stale": self.points_stale,
            "jobs_stale": self.jobs_stale,
        }


def refresh_staleness(store: ResultStore) -> StalenessReport:
    """Flag rows the current source fingerprint orphaned; report totals."""
    points_flagged, jobs_flagged = store.flag_stale()
    counts = store.counts()
    return StalenessReport(
        code_fingerprint=store.code(),
        points_flagged=points_flagged,
        jobs_flagged=jobs_flagged,
        points_stale=counts["points_stale"],
        jobs_stale=counts["jobs_stale"],
    )
