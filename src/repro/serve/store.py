"""SQL-backed queryable result store for the ``repro serve`` service.

One database file absorbs every result the service ever computes, in
two tables:

* ``points`` — one row per sweep point, keyed by the same content-hash
  fingerprint the on-disk JSON cache uses
  (:func:`repro.runner.cache.point_key`: params + function + source
  fingerprint).  The store implements the runner's cache interface, so
  ``run_sweep`` reads and writes it directly — a repeated submission is
  served as cached SQL reads, bit-identical to a cold run.
* ``jobs`` — one row per completed submission (a whole artifact or
  spec), keyed by its :func:`repro.serve.jobs.job_fingerprint`, so a
  finished job's payload is returned without touching the scheduler at
  all.

Values are stored as the canonical JSON text of the already-normalized
payload (the exact representation :func:`repro.runner.spec.json_normalize`
produces, non-finite floats included), never re-encoded through SQL
types — that is what makes the write -> read round trip bit-identical.

Backends: DuckDB when importable (``pip install duckdb``; persists to a
single ``.duckdb`` file and exports Parquet via plain SQL ``COPY``),
otherwise the stdlib ``sqlite3`` with identical semantics.  Select
explicitly with ``REPRO_SERVE_BACKEND=duckdb|sqlite`` (default
``auto``).  The store path defaults to ``REPRO_SERVE_STORE`` or
``.repro-serve/results.db``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.runner import cache as runner_cache
from repro.runner.spec import SweepPoint

_MISS = object()

_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS points (
        key TEXT PRIMARY KEY,
        artifact TEXT NOT NULL,
        point_id TEXT NOT NULL,
        fn TEXT NOT NULL,
        params TEXT NOT NULL,
        value TEXT NOT NULL,
        code_fingerprint TEXT NOT NULL,
        stale INTEGER NOT NULL DEFAULT 0,
        created_at DOUBLE NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS jobs (
        fingerprint TEXT PRIMARY KEY,
        kind TEXT NOT NULL,
        name TEXT NOT NULL,
        spec_hash TEXT,
        request TEXT NOT NULL,
        payload TEXT NOT NULL,
        code_fingerprint TEXT NOT NULL,
        stale INTEGER NOT NULL DEFAULT 0,
        created_at DOUBLE NOT NULL
    )""",
)

#: First keyword of the statements ``query`` accepts; everything else
#: (INSERT, UPDATE, ATTACH, PRAGMA, COPY...) is rejected so the /query
#: endpoint stays read-only, mirroring the read-only tool registry of
#: the DuckDB-cache pattern this store follows.
_READONLY_PREFIXES = ("select", "with", "describe", "show", "explain")


class StoreError(Exception):
    """A store operation failed (bad SQL, unavailable backend...)."""


def default_store_path() -> str:
    """Resolve the store file (``REPRO_SERVE_STORE`` or the default)."""
    return os.environ.get("REPRO_SERVE_STORE", "") \
        or os.path.join(".repro-serve", "results.db")


def available_backends() -> tuple[str, ...]:
    """Importable backends, preferred first."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return ("sqlite",)
    return ("duckdb", "sqlite")


def resolve_backend(backend: str | None = None) -> str:
    """Pick the SQL backend: explicit argument > env knob > best available."""
    choice = (backend or os.environ.get("REPRO_SERVE_BACKEND", "")
              or "auto").strip().lower()
    if choice == "auto":
        return available_backends()[0]
    if choice not in ("duckdb", "sqlite"):
        raise StoreError(
            f"unknown store backend {choice!r} (expected 'auto',"
            " 'duckdb', or 'sqlite')")
    if choice == "duckdb" and "duckdb" not in available_backends():
        raise StoreError(
            "REPRO_SERVE_BACKEND=duckdb but the duckdb module is not"
            " installed; pip install duckdb or use the sqlite backend")
    return choice


class ResultStore(runner_cache.NullCache):
    """Thread-safe SQL store for point results and job payloads.

    Implements the runner's cache interface (``get``/``has``/``put``),
    so it can be handed to ``run_sweep(cache=...)`` unchanged: every
    sweep point the service executes lands here, and probe hits are
    SQL reads.

    ``code`` pins the source fingerprint used for new keys and
    staleness checks; the default (None) tracks the current tree via
    :func:`repro.runner.cache.code_fingerprint`.  Tests use explicit
    fingerprints to simulate code moving underneath stored results.
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 backend: str | None = None, code: str | None = None):
        self.path = Path(path) if path else Path(default_store_path())
        self.backend = resolve_backend(backend)
        self._code_override = code
        self._lock = threading.Lock()
        try:
            if self.path.parent and str(self.path.parent) not in (".", ""):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = self._connect()
        except StoreError:
            raise
        except Exception as exc:
            raise StoreError(
                f"cannot open result store at {self.path}: {exc}") from exc
        with self._lock:
            for statement in _SCHEMA:
                self._conn.execute(statement)
            self._commit()

    # -- connection plumbing ------------------------------------------

    def _connect(self):
        if self.backend == "duckdb":
            import duckdb

            return duckdb.connect(str(self.path))
        import sqlite3

        # One shared connection guarded by self._lock: the HTTP server
        # handles requests on many threads.
        return sqlite3.connect(str(self.path), check_same_thread=False)

    def _commit(self) -> None:
        if self.backend == "sqlite":
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def code(self) -> str:
        """The source fingerprint new rows are keyed under."""
        if self._code_override is not None:
            return self._code_override
        return runner_cache.code_fingerprint()

    # -- the runner cache interface -----------------------------------

    def get(self, point: SweepPoint):
        """The stored value for ``point`` at the current source
        fingerprint, or the miss sentinel.

        The key embeds the fingerprint, so results computed under an
        older tree can never be served here — they simply miss.
        """
        key = runner_cache.point_key(point, self.code())
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM points WHERE key = ? AND stale = 0",
                (key,)).fetchone()
        if row is None:
            return _MISS
        return json.loads(row[0])

    def has(self, point: SweepPoint) -> bool:
        key = runner_cache.point_key(point, self.code())
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM points WHERE key = ? AND stale = 0",
                (key,)).fetchone()
        return row is not None

    def put(self, point: SweepPoint, value: Any) -> None:
        """Persist one JSON-normalized point result.

        The stored text is ``json.dumps`` of the normalized value —
        the same canonical form a cache hit or a worker round-trip
        produces — so reading it back is bit-identical by construction.
        """
        code = self.code()
        key = runner_cache.point_key(point, code)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO points VALUES (?,?,?,?,?,?,?,?,?)",
                (key, point.artifact, point.point_id, point.fn,
                 json.dumps(dict(point.params), sort_keys=True),
                 json.dumps(value), code, 0, time.time()))
            self._commit()

    @staticmethod
    def is_hit(value) -> bool:
        return value is not _MISS

    # -- job payloads -------------------------------------------------

    def record_job(self, fingerprint: str, kind: str, name: str,
                   request: Mapping[str, Any], payload: Any,
                   spec_hash: str | None = None) -> None:
        """Persist a completed submission's combined payload."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs VALUES (?,?,?,?,?,?,?,?,?)",
                (fingerprint, kind, name, spec_hash,
                 json.dumps(dict(request), sort_keys=True),
                 json.dumps(payload), self.code(), 0, time.time()))
            self._commit()

    def get_job_payload(self, fingerprint: str):
        """A completed job's payload, or None.

        Only rows written under the *current* source fingerprint
        qualify — a stale row is never silently served as a hit.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM jobs WHERE fingerprint = ?"
                " AND stale = 0 AND code_fingerprint = ?",
                (fingerprint, self.code())).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    # -- staleness ----------------------------------------------------

    def flag_stale(self) -> tuple[int, int]:
        """Mark rows from other source fingerprints stale.

        Returns ``(points flagged, jobs flagged)``.  Flagged rows stay
        in the store — historical results remain queryable with SQL
        (``WHERE stale = 1``) — but no read path serves them as hits.
        """
        code = self.code()
        counts = []
        with self._lock:
            for table in ("points", "jobs"):
                before = self._conn.execute(
                    f"SELECT count(*) FROM {table} WHERE stale = 0"
                    " AND code_fingerprint != ?", (code,)).fetchone()[0]
                self._conn.execute(
                    f"UPDATE {table} SET stale = 1 WHERE"
                    " code_fingerprint != ?", (code,))
                counts.append(int(before))
            self._commit()
        return counts[0], counts[1]

    def counts(self) -> dict[str, int]:
        """Row counts for /health: total and stale, per table."""
        out = {}
        with self._lock:
            for table in ("points", "jobs"):
                total = self._conn.execute(
                    f"SELECT count(*) FROM {table}").fetchone()[0]
                stale = self._conn.execute(
                    f"SELECT count(*) FROM {table} WHERE stale = 1"
                ).fetchone()[0]
                out[table] = int(total)
                out[f"{table}_stale"] = int(stale)
        return out

    # -- ad-hoc SQL ---------------------------------------------------

    def query(self, sql: str,
              params: Sequence[Any] = ()) -> dict[str, Any]:
        """Run one read-only SQL statement; ``{"columns", "rows"}``.

        Rejects anything that is not a single SELECT-shaped statement:
        the service's query surface is read-only by contract.
        """
        statement = sql.strip().rstrip(";")
        if ";" in statement:
            raise StoreError("query must be a single SQL statement")
        first = statement.split(None, 1)[0].lower() if statement else ""
        if first not in _READONLY_PREFIXES:
            raise StoreError(
                f"query must be read-only (got {first or 'nothing'!r};"
                f" expected one of: {', '.join(_READONLY_PREFIXES)})")
        with self._lock:
            try:
                cursor = self._conn.execute(statement, tuple(params))
                rows = cursor.fetchall()
                columns = [d[0] for d in cursor.description or ()]
            except StoreError:
                raise
            except Exception as exc:  # backend-specific SQL errors
                raise StoreError(f"query failed: {exc}") from None
        return {"columns": columns, "rows": [list(row) for row in rows]}
