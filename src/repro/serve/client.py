"""Thin stdlib HTTP client for the ``repro serve`` service.

Backs the ``repro submit`` / ``repro query`` CLI verbs and the test
suite; plain ``urllib`` so embedding it costs nothing.  Responses are
parsed with ``json.loads``, which accepts the ``NaN``/``Infinity``
tokens the server emits for non-finite floats — payloads round-trip
bit-identically through the wire format.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from typing import Any, Mapping


class ServiceError(Exception):
    """The service reported an error (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def default_url() -> str:
    """Service base URL (``REPRO_SERVE_URL`` or the local default)."""
    from repro.serve.server import default_port

    return os.environ.get("REPRO_SERVE_URL", "") \
        or f"http://127.0.0.1:{default_port()}"


class ServiceClient:
    """Typed wrappers over the service's five endpoints."""

    def __init__(self, base_url: str | None = None,
                 timeout: float = 600.0):
        self.base_url = (base_url or default_url()).rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, body: Mapping[str, Any] | None = None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {}
            detail = payload.get("error") or payload.get("state") \
                or exc.reason
            raise ServiceError(exc.code, f"{detail}") from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
                " (is `repro serve` running?)") from None

    # -- endpoints ----------------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def submit(self, artifact: str | None = None,
               spec_text: str | None = None,
               overrides: Mapping[str, Any] | None = None,
               points: list[str] | None = None,
               wait: float | None = None) -> dict:
        body: dict[str, Any] = {}
        if artifact is not None:
            body["artifact"] = artifact
        if spec_text is not None:
            body["spec"] = spec_text
        if overrides:
            body["overrides"] = dict(overrides)
        if points:
            body["points"] = list(points)
        if wait is not None:
            body["wait"] = wait
        return self._request("/submit", body)

    def status(self, job_id: str) -> dict:
        return self._request(f"/status/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("/jobs")["jobs"]

    def result(self, job_id: str, wait: float | None = None) -> dict:
        suffix = f"?wait={wait}" if wait is not None else ""
        return self._request(f"/result/{job_id}{suffix}")

    def query(self, sql: str, params: list | None = None) -> dict:
        body: dict[str, Any] = {"sql": sql}
        if params:
            body["params"] = params
        return self._request("/query", body)
