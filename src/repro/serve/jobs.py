"""Async job queue with in-flight dedupe for the ``repro serve`` service.

A submission names an artifact (optionally with overrides and a point
filter) or carries a whole spec document.  Its identity is its
:func:`job_fingerprint` — the normalized request hashed together with
the source :func:`~repro.runner.cache.code_fingerprint` (for specs, PR
6's ``run_fingerprint`` = spec_hash + code).  The queue guarantees:

* **Coalescing.**  While a fingerprint is in flight, every further
  submission of it attaches to the running job — N concurrent
  identical requests execute ``run_sweep`` exactly once, and all N
  clients read the identical payload.
* **Store-first.**  A fingerprint whose payload already sits in the
  result store is answered as a cached SQL read without touching the
  scheduler at all.
* **Bounded execution.**  Misses run on a fixed worker pool
  (``REPRO_SERVE_WORKERS``); every sweep point they produce lands in
  the store, so even partially overlapping requests reuse each other's
  points.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.runner import registry
from repro.runner.scheduler import run_sweep
from repro.serve.store import ResultStore

#: Request fields that participate in the fingerprint (everything
#: semantic; transport fields like ``wait`` never reach the hash).
_FINGERPRINT_FIELDS = ("kind", "artifact", "overrides", "points", "spec")


def default_workers() -> int:
    """Worker-pool width (``REPRO_SERVE_WORKERS``, default 2)."""
    try:
        return max(1, int(os.environ.get("REPRO_SERVE_WORKERS", "2")))
    except ValueError:
        return 2


def normalize_request(request: Mapping[str, Any]) -> dict[str, Any]:
    """Canonical submission dict; raises ``ValueError`` on a bad shape."""
    if not isinstance(request, Mapping):
        raise ValueError("submission must be a JSON object")
    spec_text = request.get("spec")
    artifact = request.get("artifact")
    if bool(spec_text) == bool(artifact):
        raise ValueError(
            "submission needs exactly one of 'artifact' (an artifact id)"
            " or 'spec' (a spec document's YAML text)")
    overrides = request.get("overrides") or {}
    if not isinstance(overrides, Mapping):
        raise ValueError("'overrides' must be an object of keyword"
                         " arguments for the sweep's point builder")
    points = request.get("points")
    if points is not None:
        if (not isinstance(points, (list, tuple))
                or not all(isinstance(p, str) for p in points)):
            raise ValueError("'points' must be a list of point ids")
        points = sorted(points)
    if spec_text is not None and not isinstance(spec_text, str):
        raise ValueError("'spec' must be the YAML text of a spec file")
    if artifact is not None and not isinstance(artifact, str):
        raise ValueError("'artifact' must be an artifact id string")
    kind = "spec" if spec_text else ("point" if points else "artifact")
    normalized = {
        "kind": kind,
        "artifact": artifact,
        "overrides": json.loads(json.dumps(dict(overrides))),
        "points": points,
        "spec": spec_text,
    }
    return normalized


def job_fingerprint(request: Mapping[str, Any],
                    code: str | None = None) -> str:
    """Content address of one submission under one source tree."""
    from repro.runner.cache import code_fingerprint

    payload = {key: request.get(key) for key in _FINGERPRINT_FIELDS}
    payload["code"] = code if code is not None else code_fingerprint()
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


@dataclass
class Job:
    """One tracked submission (shared by every coalesced client)."""

    job_id: str
    fingerprint: str
    request: dict[str, Any]
    state: str = "queued"  # queued -> running -> done | failed
    cached: bool = False
    #: Submissions answered by this job beyond the one that created it.
    coalesced: int = 0
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    def describe(self) -> dict[str, Any]:
        """The JSON shape /status and /submit return."""
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "kind": self.request["kind"],
            "artifact": self.request.get("artifact"),
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "error": self.error,
        }


def execute_request(request: Mapping[str, Any], store: ResultStore,
                    jobs: int = 1) -> dict[str, Any]:
    """Run one normalized submission through the sweep scheduler.

    This is the queue's default runner (tests inject spies around it).
    Every evaluated point goes through ``store`` — the cache argument —
    so the payload is assembled from exactly the rows the store now
    holds, and a later identical run is pure SQL reads.
    """
    if request["kind"] == "spec":
        return _execute_spec(request, store, jobs)
    spec = registry.get(request["artifact"])  # KeyError: did-you-mean
    only = request["points"]
    outcome = run_sweep(spec, jobs=jobs, cache=store,
                        overrides=request["overrides"], only=only,
                        do_combine=only is None)
    if not outcome.ok:
        raise RuntimeError(outcome.error)
    payload: dict[str, Any] = {
        "kind": request["kind"],
        "artifact": spec.artifact,
        "title": spec.title,
        "points": outcome.points,
        "selected": outcome.selected,
    }
    if only is None:
        payload["result"] = outcome.result
    else:
        built = {p.point_id: p for p in
                 spec.build_points(**dict(request["overrides"]))}
        unknown = sorted(set(only) - set(built))
        if unknown:
            raise KeyError(
                f"unknown point id(s) for {spec.artifact!r}:"
                f" {', '.join(unknown)}")
        payload["values"] = {pid: store.get(built[pid]) for pid in only}
    return payload


def _execute_spec(request: Mapping[str, Any], store: ResultStore,
                  jobs: int) -> dict[str, Any]:
    """Run a submitted spec document (all entries, combined)."""
    from repro.specs import applied_env, load_and_compile, spec_hash

    # The loader is path-based (line-anchored errors); give the posted
    # text a real file for the duration of the run.
    with tempfile.NamedTemporaryFile(
            "w", suffix=".yaml", prefix="serve-spec-",
            delete=False) as handle:
        handle.write(request["spec"])
        path = handle.name
    try:
        compiled = load_and_compile(path)
        results: dict[str, Any] = {}
        with applied_env(compiled.spec.env):
            for entry in compiled.entries:
                sweep = entry.sweep
                only = tuple(p.point_id for p in entry.selected) \
                    if entry.filtered else None
                outcome = run_sweep(sweep, jobs=jobs, cache=store,
                                    overrides=entry.overrides, only=only)
                if not outcome.ok:
                    raise RuntimeError(outcome.error)
                results[sweep.artifact] = outcome.result
        return {
            "kind": "spec",
            "spec": compiled.spec.name,
            "spec_hash": spec_hash(compiled.spec),
            "artifacts": results,
        }
    finally:
        os.unlink(path)


class JobQueue:
    """Bounded worker pool with fingerprint-level dedupe."""

    def __init__(self, store: ResultStore, workers: int | None = None,
                 runner: Callable[..., dict] | None = None,
                 sweep_jobs: int = 1):
        self.store = store
        self.workers = workers if workers is not None else default_workers()
        self.runner = runner if runner is not None else execute_request
        self.sweep_jobs = sweep_jobs
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._ids = itertools.count(1)
        #: Monotonic counters for /health and the dedupe tests.
        self.stats = {"submitted": 0, "coalesced": 0, "cached": 0,
                      "executed": 0, "failed": 0}

    # -- submission ---------------------------------------------------

    def submit(self, raw_request: Mapping[str, Any]) -> Job:
        """Enqueue (or attach to, or answer from the store) a request.

        Raises ``ValueError`` on a malformed submission and ``KeyError``
        (with a did-you-mean) on an unknown artifact id — shape problems
        surface at submit time, not as failed jobs.
        """
        request = normalize_request(raw_request)
        if request["kind"] != "spec":
            registry.get(request["artifact"])  # KeyError: did-you-mean
        fingerprint = job_fingerprint(request, self.store.code())
        with self._lock:
            self.stats["submitted"] += 1
            running = self._inflight.get(fingerprint)
            if running is not None:
                running.coalesced += 1
                self.stats["coalesced"] += 1
                return running
            job = Job(job_id=f"job-{next(self._ids)}",
                      fingerprint=fingerprint, request=request)
            self._jobs[job.job_id] = job
            if self.store.get_job_payload(fingerprint) is not None:
                job.state = "done"
                job.cached = True
                job.finished_at = time.time()
                job.done.set()
                self.stats["cached"] += 1
                return job
            self._inflight[fingerprint] = job
        self._pool.submit(self._run, job)
        return job

    def _run(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        try:
            payload = self.runner(job.request, self.store,
                                  jobs=self.sweep_jobs)
            self.store.record_job(
                job.fingerprint, job.request["kind"],
                job.request.get("artifact") or payload.get("spec", "?"),
                job.request, payload, spec_hash=payload.get("spec_hash"))
            job.state = "done"
            with self._lock:
                self.stats["executed"] += 1
        except Exception:
            job.state = "failed"
            job.error = traceback.format_exc()
            with self._lock:
                self.stats["failed"] += 1
        finally:
            job.finished_at = time.time()
            with self._lock:
                self._inflight.pop(job.fingerprint, None)
            job.done.set()

    # -- inspection ---------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` finishes (or ``timeout`` elapses)."""
        job = self.get(job_id)
        job.done.wait(timeout)
        return job

    def result(self, job_id: str):
        """A finished job's payload from the store (None if unfinished
        or failed)."""
        job = self.get(job_id)
        if job.state != "done":
            return None
        return self.store.get_job_payload(job.fingerprint)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)
