"""Simulation-as-a-service: the persistent ``repro serve`` layer.

Three pieces turn the cold-CLI sweep runner into a long-running
service:

* :mod:`repro.serve.store` — a single SQL result store (DuckDB when
  installed, stdlib ``sqlite3`` otherwise) into which every sweep point
  and every combined artifact lands, keyed by its content-hash cache
  fingerprint.  Repeated submissions become cached SQL reads and
  results are queryable across experiments (``repro query``).
* :mod:`repro.serve.jobs` — an async job queue in front of
  :func:`repro.runner.scheduler.run_sweep`: submissions are coalesced
  by run fingerprint while in flight (N concurrent identical requests
  execute once) and run on a bounded worker pool.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a stdlib
  ``ThreadingHTTPServer`` exposing submit/status/result/query/health
  plus the thin ``repro submit`` / ``repro query`` client.

Bit-identity is the contract throughout: a payload read back from the
store compares equal (``tools/compare_results.py`` semantics) to the
artifact dict a fresh ``repro run`` produces.  Staleness is tracked per
source fingerprint (:mod:`repro.serve.staleness`): a code edit moves
every key, so stale rows can be flagged and re-populated but never
silently served.
"""

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.jobs import Job, JobQueue, job_fingerprint
from repro.serve.staleness import StalenessReport, refresh_staleness
from repro.serve.store import ResultStore, StoreError, default_store_path

__all__ = [
    "Job",
    "JobQueue",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "StalenessReport",
    "StoreError",
    "default_store_path",
    "job_fingerprint",
    "refresh_staleness",
]
