"""The persistent ``repro serve`` HTTP service (stdlib only).

A ``ThreadingHTTPServer`` wrapping one :class:`~repro.serve.store.ResultStore`
and one :class:`~repro.serve.jobs.JobQueue`:

============================  =======================================
``GET  /health``              liveness + backend, queue stats, store
                              row counts, staleness report
``POST /submit``              enqueue a submission; body may set
                              ``wait`` (seconds) to block for the
                              payload inline
``GET  /status/<job-id>``     one job's state (non-blocking)
``GET  /jobs``                every tracked job's state
``GET  /result/<job-id>``     a job's payload; ``?wait=S`` blocks
``POST /query``               read-only SQL over the result store
============================  =======================================

Requests and responses are JSON.  Payloads may contain non-finite
floats; they are emitted as the ``NaN``/``Infinity`` tokens Python's
``json`` produces and parses — the same canonical text the store and
cache hold, so service reads stay bit-identical to cold runs.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serve.jobs import JobQueue
from repro.serve.staleness import refresh_staleness
from repro.serve.store import ResultStore, StoreError

#: Largest request body /submit or /query accepts (a spec document or
#: an SQL string; nobody posts megabytes of YAML at a simulator).
_MAX_BODY = 4 << 20


def default_port() -> int:
    """Service port (``REPRO_SERVE_PORT``, default 8642)."""
    try:
        return int(os.environ.get("REPRO_SERVE_PORT", "8642"))
    except ValueError:
        return 8642


class ServiceServer(ThreadingHTTPServer):
    """HTTP server owning the store and the job queue."""

    daemon_threads = True
    #: The whole point of the service is absorbing bursts of identical
    #: submissions; socketserver's default listen backlog of 5 resets
    #: connections the dedupe logic would have answered for free.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], store: ResultStore,
                 queue: JobQueue, verbose: bool = False):
        self.store = store
        self.queue = queue
        self.verbose = verbose
        self.started_at = time.time()
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.queue.shutdown(wait=False)
        self.store.close()


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -- plumbing -----------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            sys.stderr.write("serve: %s\n" % (format % args))

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body over {_MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        return json.loads(raw)

    def _query_params(self) -> dict[str, str]:
        from urllib.parse import parse_qsl, urlsplit

        return dict(parse_qsl(urlsplit(self.path).query))

    def _route(self) -> tuple[str, ...]:
        from urllib.parse import urlsplit

        return tuple(p for p in urlsplit(self.path).path.split("/") if p)

    # -- GET ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        try:
            route = self._route()
            if route == ("health",):
                return self._health()
            if route == ("jobs",):
                return self._send(200, {"jobs": [
                    job.describe() for job in self.server.queue.jobs()]})
            if len(route) == 2 and route[0] == "status":
                return self._status(route[1])
            if len(route) == 2 and route[0] == "result":
                return self._result(route[1])
            self._error(404, f"unknown endpoint GET /{'/'.join(route)}")
        except Exception as exc:  # never kill the handler thread
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _health(self) -> None:
        report = refresh_staleness(self.server.store)
        self._send(200, {
            "ok": True,
            "backend": self.server.store.backend,
            "store": str(self.server.store.path),
            "uptime_s": round(time.time() - self.server.started_at, 3),
            "workers": self.server.queue.workers,
            "queue": dict(self.server.queue.stats),
            "rows": self.server.store.counts(),
            "staleness": report.as_dict(),
        })

    def _status(self, job_id: str) -> None:
        try:
            job = self.server.queue.get(job_id)
        except KeyError as exc:
            return self._error(404, exc.args[0])
        self._send(200, job.describe())

    def _result(self, job_id: str) -> None:
        params = self._query_params()
        try:
            wait = float(params["wait"]) if "wait" in params else None
        except ValueError:
            return self._error(400, "'wait' must be a number of seconds")
        try:
            job = self.server.queue.get(job_id)
        except KeyError as exc:
            return self._error(404, exc.args[0])
        if wait is not None:
            self.server.queue.wait(job_id, timeout=wait)
        if job.state == "failed":
            return self._send(500, job.describe())
        if job.state != "done":
            return self._send(202, job.describe())
        self._send(200, job.describe()
                   | {"result": self.server.queue.result(job_id)})

    # -- POST ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        try:
            route = self._route()
            if route == ("submit",):
                return self._submit()
            if route == ("query",):
                return self._query()
            self._error(404, f"unknown endpoint POST /{'/'.join(route)}")
        except ValueError as exc:
            self._error(400, str(exc))
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _submit(self) -> None:
        body = self._read_json()
        wait = body.pop("wait", None) if isinstance(body, dict) else None
        if wait is not None and not isinstance(wait, (int, float)):
            return self._error(400, "'wait' must be a number of seconds")
        try:
            job = self.server.queue.submit(body)
        except (ValueError, KeyError) as exc:
            return self._error(400, str(exc.args[0] if exc.args else exc))
        if wait:
            self.server.queue.wait(job.job_id, timeout=float(wait))
        response = job.describe()
        if job.state == "done":
            response["result"] = self.server.queue.result(job.job_id)
        status = 500 if job.state == "failed" else 200
        self._send(status, response)

    def _query(self) -> None:
        body = self._read_json()
        sql = body.get("sql") if isinstance(body, dict) else None
        if not sql or not isinstance(sql, str):
            return self._error(400, "body must be {\"sql\": \"SELECT ...\"}")
        params = body.get("params") or ()
        try:
            table = self.server.store.query(sql, params)
        except StoreError as exc:
            return self._error(400, str(exc))
        self._send(200, table)


def make_server(host: str = "127.0.0.1", port: int | None = None,
                store: ResultStore | None = None,
                queue: JobQueue | None = None,
                workers: int | None = None,
                verbose: bool = False) -> ServiceServer:
    """Build a ready-to-run service (port 0 = ephemeral, for tests)."""
    store = store if store is not None else ResultStore()
    queue = queue if queue is not None else JobQueue(store, workers=workers)
    server = ServiceServer(
        (host, port if port is not None else default_port()),
        store, queue, verbose=verbose)
    return server


def serve_in_thread(server: ServiceServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests and embedding)."""
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return thread
