"""Copy and Init microbenchmarks (Section 7.2's workloads).

``Copy`` replicates an N-byte source array into a destination array;
``Init`` fills an N-byte array with a pattern.  Each has a CPU variant
(load/store traces, generated here) and a RowClone variant (driven by
:mod:`repro.core.techniques.rowclone`).

Accesses are modeled at cache-line granularity: one load/store per 64 B
line with a ``gap`` accounting for the other seven register-width
load/store pairs the core executes per line.

The primary generators emit :class:`~repro.cpu.blocks.AccessBlock`
chunks (address arithmetic is bulk NumPy/array math, not one namedtuple
per access); the ``*_trace`` iterators are thin compatibility shims over
the block builders and yield the exact same access stream.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cpu.blocks import AccessBlock, BlockTrace
from repro.cpu.memtrace import Access
from repro.fastpath import block_accesses

#: Array sizes of Figures 10/11 (8 KiB .. 16 MiB).
FIG10_SIZES = tuple(8 * 1024 * (1 << i) for i in range(12))

#: Instruction work per 64-byte line besides the modeled access:
#: 7 more load/store pairs at ~1 IPC.
_LINE_GAP = 7


def cpu_copy_blocks(src_base: int, dst_base: int, size_bytes: int,
                    line_bytes: int = 64, block: int | None = None) -> BlockTrace:
    """CPU-copy: streaming loads from src, stores to dst (block-native)."""
    lines = size_bytes // line_bytes
    pairs_per_block = max(1, (block or block_accesses()) // 2)

    def chunks() -> Iterator[AccessBlock]:
        for start in range(0, lines, pairs_per_block):
            count = min(pairs_per_block, lines - start)
            offsets = np.arange(start, start + count, dtype=np.int64)
            offsets *= line_bytes
            addr = np.empty(2 * count, dtype=np.int64)
            addr[0::2] = src_base + offsets
            addr[1::2] = dst_base + offsets
            yield AccessBlock(addr.tolist(), [0, 1] * count,
                              [_LINE_GAP] * (2 * count))

    return BlockTrace(chunks())


def cpu_copy_trace(src_base: int, dst_base: int, size_bytes: int,
                   line_bytes: int = 64) -> Iterator[Access]:
    """CPU-copy as a per-access iterator (shim over the block builder)."""
    yield from cpu_copy_blocks(src_base, dst_base, size_bytes,
                               line_bytes).accesses()


def cpu_init_blocks(dst_base: int, size_bytes: int, line_bytes: int = 64,
                    block: int | None = None) -> BlockTrace:
    """CPU-init: streaming stores of a fill pattern (block-native)."""
    lines = size_bytes // line_bytes
    per_block = max(1, block or block_accesses())

    def chunks() -> Iterator[AccessBlock]:
        for start in range(0, lines, per_block):
            count = min(per_block, lines - start)
            addr = np.arange(start, start + count, dtype=np.int64)
            addr *= line_bytes
            addr += dst_base
            yield AccessBlock(addr.tolist(), [1] * count,
                              [2 * _LINE_GAP] * count)

    return BlockTrace(chunks())


def cpu_init_trace(dst_base: int, size_bytes: int,
                   line_bytes: int = 64) -> Iterator[Access]:
    """CPU-init as a per-access iterator (shim over the block builder)."""
    yield from cpu_init_blocks(dst_base, size_bytes, line_bytes).accesses()


def touch_blocks(base: int, size_bytes: int, line_bytes: int = 64,
                 write: bool = False, block: int | None = None) -> BlockTrace:
    """Touch every line once (block-native warm-up / residency pass)."""
    lines = size_bytes // line_bytes
    per_block = max(1, block or block_accesses())
    flag = 1 if write else 0

    def chunks() -> Iterator[AccessBlock]:
        for start in range(0, lines, per_block):
            count = min(per_block, lines - start)
            addr = np.arange(start, start + count, dtype=np.int64)
            addr *= line_bytes
            addr += base
            yield AccessBlock(addr.tolist(), [flag] * count, [1] * count)

    return BlockTrace(chunks())


def touch_trace(base: int, size_bytes: int, line_bytes: int = 64,
                write: bool = False) -> Iterator[Access]:
    """Touch every line once (per-access shim over the block builder)."""
    yield from touch_blocks(base, size_bytes, line_bytes, write).accesses()


def channel_stream_blocks(mapper, lines_per_channel: int,
                          write: bool = False, gap: int = _LINE_GAP,
                          block: int | None = None) -> BlockTrace:
    """Streaming accesses that provably rotate across every channel.

    Built from DRAM coordinates through ``mapper.to_physical`` —
    access ``k`` targets channel ``k % channels`` at the ``k //
    channels``-th line of that channel's row-major walk — so the
    footprint spans the whole topology *regardless* of the mapping
    scheme.  On the paper's single-channel system this degenerates to a
    plain row-major stream.  This is the multi-channel bandwidth kernel
    the channel-scaling experiment drives.
    """
    from repro.dram.address import DramAddress

    g = mapper.geometry
    channels = g.channels
    columns = g.columns_per_row
    banks = g.total_banks
    rows = g.rows_per_bank
    banks_per_rank = g.num_banks
    flag = 1 if write else 0
    per_block = max(1, block or block_accesses())
    total = lines_per_channel * channels
    to_physical = mapper.to_physical

    def addr_of(k: int) -> int:
        ch = k % channels
        inner = k // channels
        col = inner % columns
        blk = inner // columns
        bank = blk % banks
        row = (blk // banks) % rows
        return to_physical(DramAddress(bank=bank, row=row, col=col,
                                       channel=ch,
                                       rank=bank // banks_per_rank))

    def chunks() -> Iterator[AccessBlock]:
        for start in range(0, total, per_block):
            count = min(per_block, total - start)
            addr = [addr_of(start + i) for i in range(count)]
            yield AccessBlock(addr, [flag] * count, [gap] * count)

    return BlockTrace(chunks())
