"""Copy and Init microbenchmarks (Section 7.2's workloads).

``Copy`` replicates an N-byte source array into a destination array;
``Init`` fills an N-byte array with a pattern.  Each has a CPU variant
(load/store traces, generated here) and a RowClone variant (driven by
:mod:`repro.core.techniques.rowclone`).

Accesses are modeled at cache-line granularity: one load/store per 64 B
line with a ``gap`` accounting for the other seven register-width
load/store pairs the core executes per line.
"""

from __future__ import annotations

from typing import Iterator

from repro.cpu.memtrace import Access, load, store

#: Array sizes of Figures 10/11 (8 KiB .. 16 MiB).
FIG10_SIZES = tuple(8 * 1024 * (1 << i) for i in range(12))

#: Instruction work per 64-byte line besides the modeled access:
#: 7 more load/store pairs at ~1 IPC.
_LINE_GAP = 7


def cpu_copy_trace(src_base: int, dst_base: int, size_bytes: int,
                   line_bytes: int = 64) -> Iterator[Access]:
    """CPU-copy: streaming loads from src, stores to dst."""
    lines = size_bytes // line_bytes
    for i in range(lines):
        offset = i * line_bytes
        yield load(src_base + offset, gap=_LINE_GAP)
        yield store(dst_base + offset, gap=_LINE_GAP)


def cpu_init_trace(dst_base: int, size_bytes: int,
                   line_bytes: int = 64) -> Iterator[Access]:
    """CPU-init: streaming stores of a fill pattern."""
    lines = size_bytes // line_bytes
    for i in range(lines):
        yield store(dst_base + i * line_bytes, gap=2 * _LINE_GAP)


def touch_trace(base: int, size_bytes: int, line_bytes: int = 64,
                write: bool = False) -> Iterator[Access]:
    """Touch every line once (warms caches / establishes residency)."""
    lines = size_bytes // line_bytes
    for i in range(lines):
        addr = base + i * line_bytes
        yield store(addr, gap=1) if write else load(addr, gap=1)
