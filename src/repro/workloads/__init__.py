"""Workload generators: PolyBench kernels, lmbench, and microbenchmarks."""

from repro.workloads import lmbench, microbench, polybench

__all__ = ["lmbench", "microbench", "polybench"]
