"""PolyBench kernels as lazy memory-trace generators.

The paper evaluates 28 PolyBench workloads (Sections 6 and 8).  Running
the real C kernels is impossible here, but the evaluation only consumes
their *memory access streams*, so each kernel is re-implemented as a
generator that walks the same loop nest and yields the loads/stores the
compiled kernel would issue (with register-allocated accumulators, i.e.
the innermost reduction variable stays in a register).

Problem sizes are scaled down so full workloads finish in seconds of
host time; EXPERIMENTS.md records the scaling.  Three size classes are
provided (``mini`` < ``small`` < ``large``); experiments default to
``small`` and unit tests to ``mini``.

Every kernel is registered in :data:`KERNELS`; use :func:`trace` to
instantiate one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cpu.blocks import BlockTrace, blockify
from repro.cpu.memtrace import Access, load, store

ELEM = 8  # sizeof(double)

#: Padding between arrays so they never share a cache line.
_PAD = 4096


@dataclass(frozen=True)
class Dims:
    """Scaled loop bounds for one size class."""

    n: int          # primary dimension
    m: int          # secondary dimension (defaults to n where unused)
    steps: int = 4  # time steps for stencils


SIZES = {
    "mini": Dims(n=20, m=24, steps=2),
    "small": Dims(n=44, m=52, steps=4),
    "large": Dims(n=72, m=84, steps=6),
}

#: Square dimension used by O(N^2) kernels (vectors/matrix-vector), which
#: can afford much larger footprints than O(N^3) kernels.
SIZES_2D = {
    "mini": Dims(n=96, m=96, steps=2),
    "small": Dims(n=320, m=320, steps=4),
    "large": Dims(n=512, m=512, steps=8),
}


class _Alloc:
    """Bump allocator laying arrays out in the physical address space."""

    def __init__(self, base: int = 1 << 20) -> None:
        self._next = base

    def matrix(self, rows: int, cols: int) -> "Mat":
        mat = Mat(self._next, cols)
        self._next += rows * cols * ELEM + _PAD
        return mat

    def vector(self, n: int) -> "Vec":
        vec = Vec(self._next)
        self._next += n * ELEM + _PAD
        return vec

    def cube(self, d1: int, d2: int, d3: int) -> "Cube":
        cube = Cube(self._next, d2, d3)
        self._next += d1 * d2 * d3 * ELEM + _PAD
        return cube


@dataclass(frozen=True)
class Mat:
    base: int
    cols: int

    def a(self, i: int, j: int) -> int:
        return self.base + (i * self.cols + j) * ELEM


@dataclass(frozen=True)
class Vec:
    base: int

    def a(self, i: int) -> int:
        return self.base + i * ELEM


@dataclass(frozen=True)
class Cube:
    base: int
    d2: int
    d3: int

    def a(self, i: int, j: int, k: int) -> int:
        return self.base + ((i * self.d2 + j) * self.d3 + k) * ELEM


KERNELS: dict[str, Callable[[Dims], Iterator[Access]]] = {}


def _kernel(name: str, sizes: dict[str, Dims] = SIZES):
    """Register a kernel generator under ``name``."""

    def wrap(fn: Callable[[Dims], Iterator[Access]]):
        fn.sizes = sizes  # type: ignore[attr-defined]
        KERNELS[name] = fn
        return fn

    return wrap


def names() -> list[str]:
    """All registered kernel names, sorted."""
    return sorted(KERNELS)


def trace(name: str, size: str = "small") -> Iterator[Access]:
    """Instantiate a kernel's memory trace."""
    try:
        fn = KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown PolyBench kernel {name!r}; known: {', '.join(names())}"
        ) from None
    sizes = getattr(fn, "sizes", SIZES)
    try:
        dims = sizes[size]
    except KeyError:
        raise KeyError(f"unknown size class {size!r}; known: {sorted(sizes)}") from None
    return fn(dims)


def trace_blocks(name: str, size: str = "small",
                 block: int | None = None) -> BlockTrace:
    """A kernel's memory trace chunked into access blocks.

    The loop-nest generator still produces the accesses one by one (the
    kernels are irregular), but the cache and processor layers get the
    batched frontend interface.
    """
    return blockify(trace(name, size), block)


# ---------------------------------------------------------------------------
# Linear algebra BLAS-like kernels (O(N^3))
# ---------------------------------------------------------------------------

@_kernel("gemm")
def _gemm(d: Dims) -> Iterator[Access]:
    """C = alpha*A*B + beta*C."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b, c = al.matrix(n, m), al.matrix(m, n), al.matrix(n, n)
    for i in range(n):
        for j in range(n):
            yield load(c.a(i, j), gap=1)
            for k in range(m):
                yield load(a.a(i, k), gap=1)
                yield load(b.a(k, j), gap=1)
            yield store(c.a(i, j), gap=1)


@_kernel("2mm")
def _2mm(d: Dims) -> Iterator[Access]:
    """tmp = alpha*A*B; D = tmp*C + beta*D."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b, c, dd, tmp = (al.matrix(n, m), al.matrix(m, n), al.matrix(n, n),
                        al.matrix(n, n), al.matrix(n, n))
    for i in range(n):
        for j in range(n):
            for k in range(m):
                yield load(a.a(i, k), gap=1)
                yield load(b.a(k, j), gap=1)
            yield store(tmp.a(i, j), gap=1)
    for i in range(n):
        for j in range(n):
            yield load(dd.a(i, j), gap=1)
            for k in range(n):
                yield load(tmp.a(i, k), gap=1)
                yield load(c.a(k, j), gap=1)
            yield store(dd.a(i, j), gap=1)


@_kernel("3mm")
def _3mm(d: Dims) -> Iterator[Access]:
    """E = A*B; F = C*D; G = E*F."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b, c, dd = (al.matrix(n, m), al.matrix(m, n),
                   al.matrix(n, m), al.matrix(m, n))
    e, f, g = al.matrix(n, n), al.matrix(n, n), al.matrix(n, n)
    for dst, lhs, rhs, inner in ((e, a, b, m), (f, c, dd, m), (g, e, f, n)):
        for i in range(n):
            for j in range(n):
                for k in range(inner):
                    yield load(lhs.a(i, k), gap=1)
                    yield load(rhs.a(k, j), gap=1)
                yield store(dst.a(i, j), gap=1)


@_kernel("syrk")
def _syrk(d: Dims) -> Iterator[Access]:
    """C = alpha*A*A^T + beta*C (lower triangle)."""
    n, m = d.n, d.m
    al = _Alloc()
    a, c = al.matrix(n, m), al.matrix(n, n)
    for i in range(n):
        for j in range(i + 1):
            yield load(c.a(i, j), gap=1)
            for k in range(m):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(j, k), gap=1)
            yield store(c.a(i, j), gap=1)


@_kernel("syr2k")
def _syr2k(d: Dims) -> Iterator[Access]:
    """C = alpha*(A*B^T + B*A^T) + beta*C (lower triangle)."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b, c = al.matrix(n, m), al.matrix(n, m), al.matrix(n, n)
    for i in range(n):
        for j in range(i + 1):
            yield load(c.a(i, j), gap=1)
            for k in range(m):
                yield load(a.a(i, k), gap=1)
                yield load(b.a(j, k), gap=1)
                yield load(b.a(i, k), gap=1)
                yield load(a.a(j, k), gap=1)
            yield store(c.a(i, j), gap=1)


@_kernel("symm")
def _symm(d: Dims) -> Iterator[Access]:
    """C = alpha*A*B + beta*C with symmetric A."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b, c = al.matrix(n, n), al.matrix(n, m), al.matrix(n, m)
    for i in range(n):
        for j in range(m):
            for k in range(i):
                yield load(a.a(i, k), gap=1)
                yield load(b.a(k, j), gap=1)
                yield load(c.a(k, j), gap=1)
                yield store(c.a(k, j), gap=1)
            yield load(b.a(i, j), gap=1)
            yield load(a.a(i, i), gap=1)
            yield load(c.a(i, j), gap=1)
            yield store(c.a(i, j), gap=1)


@_kernel("trmm")
def _trmm(d: Dims) -> Iterator[Access]:
    """B = alpha*A^T*B with lower-triangular A."""
    n, m = d.n, d.m
    al = _Alloc()
    a, b = al.matrix(n, n), al.matrix(n, m)
    for i in range(n):
        for j in range(m):
            yield load(b.a(i, j), gap=1)
            for k in range(i + 1, n):
                yield load(a.a(k, i), gap=1)
                yield load(b.a(k, j), gap=1)
            yield store(b.a(i, j), gap=1)


@_kernel("doitgen")
def _doitgen(d: Dims) -> Iterator[Access]:
    """sum[p] = A[r][q][:]*C4[:][p] for all r, q."""
    r = q = max(8, d.n // 3)
    p = d.n
    al = _Alloc()
    a, c4, s = al.cube(r, q, p), al.matrix(p, p), al.vector(p)
    for rr in range(r):
        for qq in range(q):
            for pp in range(p):
                for ss in range(p):
                    yield load(a.a(rr, qq, ss), gap=1)
                    yield load(c4.a(ss, pp), gap=1)
                yield store(s.a(pp), gap=1)
            for pp in range(p):
                yield load(s.a(pp), gap=1)
                yield store(a.a(rr, qq, pp), gap=1)


# ---------------------------------------------------------------------------
# Matrix-vector kernels (O(N^2))
# ---------------------------------------------------------------------------

@_kernel("atax", SIZES_2D)
def _atax(d: Dims) -> Iterator[Access]:
    """y = A^T * (A * x)."""
    n, m = d.n, d.m
    al = _Alloc()
    a, x, y, tmp = al.matrix(n, m), al.vector(m), al.vector(m), al.vector(n)
    for i in range(n):
        for j in range(m):
            yield load(a.a(i, j), gap=1)
            yield load(x.a(j), gap=1)
        yield store(tmp.a(i), gap=1)
    for i in range(n):
        for j in range(m):
            yield load(a.a(i, j), gap=1)
            yield load(y.a(j), gap=1)
            yield store(y.a(j), gap=1)
        yield load(tmp.a(i), gap=1)


@_kernel("bicg", SIZES_2D)
def _bicg(d: Dims) -> Iterator[Access]:
    """s = A^T*r; q = A*p."""
    n, m = d.n, d.m
    al = _Alloc()
    a = al.matrix(n, m)
    s, q, p, r = al.vector(m), al.vector(n), al.vector(m), al.vector(n)
    for i in range(n):
        yield load(r.a(i), gap=1)
        for j in range(m):
            yield load(s.a(j), gap=1)
            yield load(a.a(i, j), gap=1)
            yield store(s.a(j), gap=1)
            yield load(a.a(i, j), gap=0)
            yield load(p.a(j), gap=1)
        yield store(q.a(i), gap=1)


@_kernel("mvt", SIZES_2D)
def _mvt(d: Dims) -> Iterator[Access]:
    """x1 += A*y1; x2 += A^T*y2."""
    n = d.n
    al = _Alloc()
    a = al.matrix(n, n)
    x1, x2, y1, y2 = (al.vector(n) for _ in range(4))
    for i in range(n):
        yield load(x1.a(i), gap=1)
        for j in range(n):
            yield load(a.a(i, j), gap=1)
            yield load(y1.a(j), gap=1)
        yield store(x1.a(i), gap=1)
    for i in range(n):
        yield load(x2.a(i), gap=1)
        for j in range(n):
            yield load(a.a(j, i), gap=1)
            yield load(y2.a(j), gap=1)
        yield store(x2.a(i), gap=1)


@_kernel("gemver", SIZES_2D)
def _gemver(d: Dims) -> Iterator[Access]:
    """A += u1*v1^T + u2*v2^T; x = beta*A^T*y + z; w = alpha*A*x."""
    n = d.n
    al = _Alloc()
    a = al.matrix(n, n)
    u1, v1, u2, v2, x, y, z, w = (al.vector(n) for _ in range(8))
    for i in range(n):
        yield load(u1.a(i), gap=1)
        yield load(u2.a(i), gap=1)
        for j in range(n):
            yield load(a.a(i, j), gap=1)
            yield load(v1.a(j), gap=1)
            yield load(v2.a(j), gap=1)
            yield store(a.a(i, j), gap=1)
    for i in range(n):
        yield load(x.a(i), gap=1)
        for j in range(n):
            yield load(a.a(j, i), gap=1)
            yield load(y.a(j), gap=1)
        yield store(x.a(i), gap=1)
    for i in range(n):
        yield load(x.a(i), gap=1)
        yield load(z.a(i), gap=1)
        yield store(x.a(i), gap=1)
    for i in range(n):
        for j in range(n):
            yield load(a.a(i, j), gap=1)
            yield load(x.a(j), gap=1)
        yield store(w.a(i), gap=1)


@_kernel("gesummv", SIZES_2D)
def _gesummv(d: Dims) -> Iterator[Access]:
    """y = alpha*A*x + beta*B*x."""
    n = d.n
    al = _Alloc()
    a, b = al.matrix(n, n), al.matrix(n, n)
    x, y = al.vector(n), al.vector(n)
    for i in range(n):
        for j in range(n):
            yield load(a.a(i, j), gap=1)
            yield load(b.a(i, j), gap=1)
            yield load(x.a(j), gap=1)
        yield store(y.a(i), gap=1)


# ---------------------------------------------------------------------------
# Solvers and decompositions
# ---------------------------------------------------------------------------

@_kernel("cholesky")
def _cholesky(d: Dims) -> Iterator[Access]:
    n = d.n
    al = _Alloc()
    a = al.matrix(n, n)
    for i in range(n):
        for j in range(i):
            yield load(a.a(i, j), gap=1)
            for k in range(j):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(j, k), gap=1)
            yield load(a.a(j, j), gap=1)
            yield store(a.a(i, j), gap=1)
        yield load(a.a(i, i), gap=1)
        for k in range(i):
            yield load(a.a(i, k), gap=1)
        yield store(a.a(i, i), gap=1)


@_kernel("lu")
def _lu(d: Dims) -> Iterator[Access]:
    n = d.n
    al = _Alloc()
    a = al.matrix(n, n)
    for i in range(n):
        for j in range(i):
            yield load(a.a(i, j), gap=1)
            for k in range(j):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(k, j), gap=1)
            yield load(a.a(j, j), gap=1)
            yield store(a.a(i, j), gap=1)
        for j in range(i, n):
            yield load(a.a(i, j), gap=1)
            for k in range(i):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(k, j), gap=1)
            yield store(a.a(i, j), gap=1)


@_kernel("ludcmp")
def _ludcmp(d: Dims) -> Iterator[Access]:
    n = d.n
    al = _Alloc()
    a = al.matrix(n, n)
    b, x, y = al.vector(n), al.vector(n), al.vector(n)
    yield from _lu_body(a, n)
    for i in range(n):
        yield load(b.a(i), gap=1)
        for j in range(i):
            yield load(a.a(i, j), gap=1)
            yield load(y.a(j), gap=1)
        yield store(y.a(i), gap=1)
    for i in range(n - 1, -1, -1):
        yield load(y.a(i), gap=1)
        for j in range(i + 1, n):
            yield load(a.a(i, j), gap=1)
            yield load(x.a(j), gap=1)
        yield load(a.a(i, i), gap=1)
        yield store(x.a(i), gap=1)


def _lu_body(a: Mat, n: int) -> Iterator[Access]:
    for i in range(n):
        for j in range(i):
            yield load(a.a(i, j), gap=1)
            for k in range(j):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(k, j), gap=1)
            yield load(a.a(j, j), gap=1)
            yield store(a.a(i, j), gap=1)
        for j in range(i, n):
            yield load(a.a(i, j), gap=1)
            for k in range(i):
                yield load(a.a(i, k), gap=1)
                yield load(a.a(k, j), gap=1)
            yield store(a.a(i, j), gap=1)


@_kernel("trisolv", SIZES_2D)
def _trisolv(d: Dims) -> Iterator[Access]:
    """Lower-triangular solve L*x = b."""
    n = d.n
    al = _Alloc()
    lower = al.matrix(n, n)
    x, b = al.vector(n), al.vector(n)
    for i in range(n):
        yield load(b.a(i), gap=1)
        for j in range(i):
            yield load(lower.a(i, j), gap=1)
            yield load(x.a(j), gap=1)
        yield load(lower.a(i, i), gap=1)
        yield store(x.a(i), gap=1)


@_kernel("durbin", SIZES_2D)
def _durbin(d: Dims) -> Iterator[Access]:
    """Toeplitz solver; tiny footprint (the paper's least memory-intensive)."""
    n = d.n
    al = _Alloc()
    r, y, z = al.vector(n), al.vector(n), al.vector(n)
    yield load(r.a(0), gap=2)
    yield store(y.a(0), gap=2)
    for k in range(1, n):
        yield load(r.a(k), gap=2)
        for i in range(k):
            yield load(r.a(k - i - 1), gap=1)
            yield load(y.a(i), gap=1)
        for i in range(k):
            yield load(y.a(i), gap=1)
            yield load(y.a(k - i - 1), gap=1)
            yield store(z.a(i), gap=1)
        for i in range(k):
            yield load(z.a(i), gap=1)
            yield store(y.a(i), gap=1)
        yield store(y.a(k), gap=2)


@_kernel("gramschmidt")
def _gramschmidt(d: Dims) -> Iterator[Access]:
    n, m = d.n, d.m
    al = _Alloc()
    a, r, q = al.matrix(m, n), al.matrix(n, n), al.matrix(m, n)
    for k in range(n):
        for i in range(m):
            yield load(a.a(i, k), gap=1)
        yield store(r.a(k, k), gap=1)
        for i in range(m):
            yield load(a.a(i, k), gap=1)
            yield store(q.a(i, k), gap=1)
        for j in range(k + 1, n):
            for i in range(m):
                yield load(q.a(i, k), gap=1)
                yield load(a.a(i, j), gap=1)
            yield store(r.a(k, j), gap=1)
            for i in range(m):
                yield load(a.a(i, j), gap=1)
                yield load(q.a(i, k), gap=1)
                yield load(r.a(k, j), gap=1)
                yield store(a.a(i, j), gap=1)


# ---------------------------------------------------------------------------
# Data mining
# ---------------------------------------------------------------------------

@_kernel("correlation")
def _correlation(d: Dims) -> Iterator[Access]:
    n, m = d.m, d.n  # n data points, m attributes
    al = _Alloc()
    data = al.matrix(n, m)
    mean, stddev = al.vector(m), al.vector(m)
    corr = al.matrix(m, m)
    for j in range(m):
        for i in range(n):
            yield load(data.a(i, j), gap=1)
        yield store(mean.a(j), gap=1)
    for j in range(m):
        yield load(mean.a(j), gap=1)
        for i in range(n):
            yield load(data.a(i, j), gap=1)
        yield store(stddev.a(j), gap=1)
    for i in range(n):
        for j in range(m):
            yield load(data.a(i, j), gap=1)
            yield load(mean.a(j), gap=1)
            yield load(stddev.a(j), gap=1)
            yield store(data.a(i, j), gap=1)
    for i in range(m - 1):
        for j in range(i + 1, m):
            for k in range(n):
                yield load(data.a(k, i), gap=1)
                yield load(data.a(k, j), gap=1)
            yield store(corr.a(i, j), gap=1)
            yield store(corr.a(j, i), gap=1)


@_kernel("covariance")
def _covariance(d: Dims) -> Iterator[Access]:
    n, m = d.m, d.n
    al = _Alloc()
    data = al.matrix(n, m)
    mean = al.vector(m)
    cov = al.matrix(m, m)
    for j in range(m):
        for i in range(n):
            yield load(data.a(i, j), gap=1)
        yield store(mean.a(j), gap=1)
    for i in range(n):
        for j in range(m):
            yield load(data.a(i, j), gap=1)
            yield load(mean.a(j), gap=1)
            yield store(data.a(i, j), gap=1)
    for i in range(m):
        for j in range(i, m):
            for k in range(n):
                yield load(data.a(k, i), gap=1)
                yield load(data.a(k, j), gap=1)
            yield store(cov.a(i, j), gap=1)
            yield store(cov.a(j, i), gap=1)


# ---------------------------------------------------------------------------
# Stencils
# ---------------------------------------------------------------------------

_STENCIL_SIZES = {
    "mini": Dims(n=32, m=32, steps=2),
    "small": Dims(n=96, m=96, steps=4),
    "large": Dims(n=160, m=160, steps=8),
}


@_kernel("jacobi-1d", {
    "mini": Dims(n=2048, m=0, steps=4),
    "small": Dims(n=16384, m=0, steps=10),
    "large": Dims(n=65536, m=0, steps=16),
})
def _jacobi_1d(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    a, b = al.vector(n), al.vector(n)
    for _ in range(t):
        for i in range(1, n - 1):
            yield load(a.a(i - 1), gap=1)
            yield load(a.a(i), gap=0)
            yield load(a.a(i + 1), gap=0)
            yield store(b.a(i), gap=1)
        for i in range(1, n - 1):
            yield load(b.a(i - 1), gap=1)
            yield load(b.a(i), gap=0)
            yield load(b.a(i + 1), gap=0)
            yield store(a.a(i), gap=1)


@_kernel("jacobi-2d", _STENCIL_SIZES)
def _jacobi_2d(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    a, b = al.matrix(n, n), al.matrix(n, n)
    for _ in range(t):
        for src, dst in ((a, b), (b, a)):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    yield load(src.a(i, j), gap=1)
                    yield load(src.a(i, j - 1), gap=0)
                    yield load(src.a(i, j + 1), gap=0)
                    yield load(src.a(i - 1, j), gap=0)
                    yield load(src.a(i + 1, j), gap=0)
                    yield store(dst.a(i, j), gap=1)


@_kernel("seidel-2d", _STENCIL_SIZES)
def _seidel_2d(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    a = al.matrix(n, n)
    for _ in range(t):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for di in (-1, 0, 1):
                    for dj in (-1, 0, 1):
                        yield load(a.a(i + di, j + dj), gap=0)
                yield store(a.a(i, j), gap=2)


@_kernel("fdtd-2d", _STENCIL_SIZES)
def _fdtd_2d(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    ex, ey, hz = al.matrix(n, n), al.matrix(n, n), al.matrix(n, n)
    fict = al.vector(t)
    for step in range(t):
        yield load(fict.a(step), gap=1)
        for j in range(n):
            yield store(ey.a(0, j), gap=1)
        for i in range(1, n):
            for j in range(n):
                yield load(ey.a(i, j), gap=1)
                yield load(hz.a(i, j), gap=0)
                yield load(hz.a(i - 1, j), gap=0)
                yield store(ey.a(i, j), gap=1)
        for i in range(n):
            for j in range(1, n):
                yield load(ex.a(i, j), gap=1)
                yield load(hz.a(i, j), gap=0)
                yield load(hz.a(i, j - 1), gap=0)
                yield store(ex.a(i, j), gap=1)
        for i in range(n - 1):
            for j in range(n - 1):
                yield load(hz.a(i, j), gap=1)
                yield load(ex.a(i, j + 1), gap=0)
                yield load(ex.a(i, j), gap=0)
                yield load(ey.a(i + 1, j), gap=0)
                yield load(ey.a(i, j), gap=0)
                yield store(hz.a(i, j), gap=1)


@_kernel("heat-3d", {
    "mini": Dims(n=12, m=12, steps=2),
    "small": Dims(n=20, m=20, steps=4),
    "large": Dims(n=32, m=32, steps=6),
})
def _heat_3d(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    a, b = al.cube(n, n, n), al.cube(n, n, n)
    for _ in range(t):
        for src, dst in ((a, b), (b, a)):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    for k in range(1, n - 1):
                        yield load(src.a(i - 1, j, k), gap=1)
                        yield load(src.a(i + 1, j, k), gap=0)
                        yield load(src.a(i, j - 1, k), gap=0)
                        yield load(src.a(i, j + 1, k), gap=0)
                        yield load(src.a(i, j, k - 1), gap=0)
                        yield load(src.a(i, j, k + 1), gap=0)
                        yield load(src.a(i, j, k), gap=0)
                        yield store(dst.a(i, j, k), gap=1)


@_kernel("adi", _STENCIL_SIZES)
def _adi(d: Dims) -> Iterator[Access]:
    n, t = d.n, d.steps
    al = _Alloc()
    u, v, p, q = (al.matrix(n, n) for _ in range(4))
    for _ in range(t):
        # Column sweep.
        for i in range(1, n - 1):
            yield store(v.a(0, i), gap=1)
            yield store(p.a(i, 0), gap=1)
            yield store(q.a(i, 0), gap=1)
            for j in range(1, n - 1):
                yield load(p.a(i, j - 1), gap=1)
                yield load(u.a(j, i - 1), gap=0)
                yield load(u.a(j, i), gap=0)
                yield load(u.a(j, i + 1), gap=0)
                yield load(q.a(i, j - 1), gap=0)
                yield store(p.a(i, j), gap=1)
                yield store(q.a(i, j), gap=1)
            for j in range(n - 2, 0, -1):
                yield load(p.a(i, j), gap=1)
                yield load(v.a(j + 1, i), gap=0)
                yield load(q.a(i, j), gap=0)
                yield store(v.a(j, i), gap=1)
        # Row sweep.
        for i in range(1, n - 1):
            yield store(u.a(i, 0), gap=1)
            yield store(p.a(i, 0), gap=1)
            yield store(q.a(i, 0), gap=1)
            for j in range(1, n - 1):
                yield load(p.a(i, j - 1), gap=1)
                yield load(v.a(i - 1, j), gap=0)
                yield load(v.a(i, j), gap=0)
                yield load(v.a(i + 1, j), gap=0)
                yield load(q.a(i, j - 1), gap=0)
                yield store(p.a(i, j), gap=1)
                yield store(q.a(i, j), gap=1)
            for j in range(n - 2, 0, -1):
                yield load(p.a(i, j), gap=1)
                yield load(u.a(i, j + 1), gap=0)
                yield load(q.a(i, j), gap=0)
                yield store(u.a(i, j), gap=1)


# ---------------------------------------------------------------------------
# Dynamic programming
# ---------------------------------------------------------------------------

@_kernel("nussinov")
def _nussinov(d: Dims) -> Iterator[Access]:
    n = d.n * 2
    al = _Alloc()
    seq = al.vector(n)
    table = al.matrix(n, n)
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            if j - 1 >= 0:
                yield load(table.a(i, j), gap=1)
                yield load(table.a(i, j - 1), gap=0)
                yield store(table.a(i, j), gap=1)
            if i + 1 < n:
                yield load(table.a(i, j), gap=1)
                yield load(table.a(i + 1, j), gap=0)
                yield store(table.a(i, j), gap=1)
            if j - 1 >= 0 and i + 1 < n:
                yield load(seq.a(i), gap=1)
                yield load(seq.a(j), gap=0)
                yield load(table.a(i, j), gap=0)
                yield load(table.a(i + 1, j - 1), gap=0)
                yield store(table.a(i, j), gap=1)
            for k in range(i + 1, j):
                yield load(table.a(i, j), gap=1)
                yield load(table.a(i, k), gap=0)
                yield load(table.a(k + 1, j), gap=0)
                yield store(table.a(i, j), gap=1)


@_kernel("floyd-warshall", {
    "mini": Dims(n=24, m=24),
    "small": Dims(n=48, m=48),
    "large": Dims(n=80, m=80),
})
def _floyd_warshall(d: Dims) -> Iterator[Access]:
    n = d.n
    al = _Alloc()
    path = al.matrix(n, n)
    for k in range(n):
        for i in range(n):
            for j in range(n):
                yield load(path.a(i, j), gap=1)
                yield load(path.a(i, k), gap=0)
                yield load(path.a(k, j), gap=0)
                yield store(path.a(i, j), gap=1)


@_kernel("deriche", _STENCIL_SIZES)
def _deriche(d: Dims) -> Iterator[Access]:
    """Deriche recursive edge filter (horizontal + vertical passes)."""
    w = h = d.n
    al = _Alloc()
    img_in, img_out, y1, y2 = (al.matrix(w, h) for _ in range(4))
    for i in range(w):
        for j in range(h):
            yield load(img_in.a(i, j), gap=1)
            yield store(y1.a(i, j), gap=1)
        for j in range(h - 1, -1, -1):
            yield load(img_in.a(i, j), gap=1)
            yield store(y2.a(i, j), gap=1)
        for j in range(h):
            yield load(y1.a(i, j), gap=1)
            yield load(y2.a(i, j), gap=0)
            yield store(img_out.a(i, j), gap=1)
    for j in range(h):
        for i in range(w):
            yield load(img_out.a(i, j), gap=1)
            yield store(y1.a(i, j), gap=1)
        for i in range(w - 1, -1, -1):
            yield load(img_out.a(i, j), gap=1)
            yield store(y2.a(i, j), gap=1)
        for i in range(w):
            yield load(y1.a(i, j), gap=1)
            yield load(y2.a(i, j), gap=0)
            yield store(img_out.a(i, j), gap=1)


#: The 11 kernels Figures 13/14 report individually.
FIG13_KERNELS = (
    "gemver", "mvt", "gesummv", "syrk", "symm", "correlation",
    "covariance", "trisolv", "gramschmidt", "gemm", "durbin",
)
