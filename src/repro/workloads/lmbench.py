"""lmbench-style memory read latency microbenchmark.

``lat_mem_rd`` measures load-to-use latency by chasing a pointer chain
through a working set of a given size: every load depends on the
previous one, so no memory-level parallelism hides the latency.  The
paper uses this benchmark to produce Figure 8's latency profile (average
cycles per load vs. working-set size).

The chain is a seeded pseudo-random permutation of the working set's
cache lines (one hop per line), exactly like the real benchmark's
default "random" pattern, so hardware prefetchers (which we do not
model anyway) could not help.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.cpu.blocks import AccessBlock, BlockTrace
from repro.cpu.memtrace import FLAG_DEPENDENT, Access
from repro.fastpath import block_accesses

#: Working-set sizes of Figure 8 (1 KiB .. 16 MiB).
FIG8_SIZES_KIB = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 2048, 4096, 8192, 16384,
)


def pointer_chase_blocks(size_bytes: int, accesses: int, line_bytes: int = 64,
                         base_addr: int = 1 << 22, seed: int = 7,
                         gap: int = 1, block: int | None = None) -> BlockTrace:
    """Dependent-load chase over ``size_bytes`` of memory (block-native).

    ``accesses`` loads are issued, wrapping around the chain as needed.
    Every load is flagged dependent so the core serializes on it.  The
    chain order is the same seeded permutation the per-access generator
    always used; blocks are C-speed slices of the precomputed one-pass
    address list.
    """
    if size_bytes < line_bytes:
        raise ValueError("working set must hold at least one line")
    lines = size_bytes // line_bytes
    order = list(range(lines))
    rng = random.Random(seed)
    rng.shuffle(order)
    pass_addrs = [base_addr + index * line_bytes for index in order]
    per_block = max(1, block or block_accesses())

    def chunks() -> Iterator[AccessBlock]:
        issued = 0
        pos = 0
        while issued < accesses:
            count = min(per_block, accesses - issued)
            addr: list[int] = []
            while len(addr) < count:
                take = min(count - len(addr), lines - pos)
                addr.extend(pass_addrs[pos:pos + take])
                pos = (pos + take) % lines
            yield AccessBlock(addr, [FLAG_DEPENDENT] * count, [gap] * count)
            issued += count

    return BlockTrace(chunks())


def pointer_chase(size_bytes: int, accesses: int, line_bytes: int = 64,
                  base_addr: int = 1 << 22, seed: int = 7,
                  gap: int = 1) -> Iterator[Access]:
    """Dependent-load chase (per-access shim over the block builder)."""
    yield from pointer_chase_blocks(
        size_bytes, accesses, line_bytes, base_addr, seed, gap).accesses()


def accesses_for(size_bytes: int, min_accesses: int = 4096,
                 max_accesses: int = 40_000, line_bytes: int = 64) -> int:
    """How many loads to issue for a working set: >= 2 full passes."""
    lines = max(1, size_bytes // line_bytes)
    return max(min_accesses, min(max_accesses, 2 * lines))
